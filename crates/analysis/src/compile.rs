//! The whole-program analysis driver.

use ipds_dataflow::{AliasAnalysis, Summaries};
use ipds_ir::{FuncId, Function, Program};

use crate::correlate::build_tables;
use crate::encode::table_sizes;
use crate::hash::find_perfect_hash;
use crate::tables::{BranchInfo, FunctionAnalysis};

/// Tuning knobs for the analysis (ablation switches and limits).
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Use load-anchored triggers/targets (the paper's load→load loop).
    pub load_anchors: bool,
    /// Use store-anchored triggers (the paper's store→load loop).
    pub store_anchors: bool,
    /// Extension (off by default, documented in DESIGN.md): constant stores
    /// pin exact values and emit actions through the block's terminating
    /// branch.
    pub const_store: bool,
    /// Upper bound on the perfect-hash space (log2).
    pub max_hash_log2: u32,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            load_anchors: true,
            store_anchors: true,
            const_store: false,
            max_hash_log2: 24,
        }
    }
}

/// Analysis results for a whole program: one [`FunctionAnalysis`] per
/// function, in function-id order.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// Per-function tables, indexed by `FuncId`.
    pub functions: Vec<FunctionAnalysis>,
}

impl ProgramAnalysis {
    /// The analysis for `func`.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    pub fn of(&self, func: FuncId) -> &FunctionAnalysis {
        &self.functions[func.0 as usize]
    }

    /// Total branches across the program.
    pub fn branch_count(&self) -> usize {
        self.functions.iter().map(|f| f.branches.len()).sum()
    }

    /// Total checked branches across the program.
    pub fn checked_count(&self) -> usize {
        self.functions.iter().map(|f| f.checked_count()).sum()
    }
}

/// Analyzes one function given shared whole-program facts.
///
/// # Panics
///
/// Panics if the perfect-hash search fails within `config.max_hash_log2`
/// (possible only for pathological functions with more than `2^24`
/// instructions).
pub fn analyze_function(
    program: &Program,
    func: &Function,
    alias: &AliasAnalysis,
    summaries: &Summaries,
    config: &AnalysisConfig,
) -> FunctionAnalysis {
    let raw = build_tables(program, func, alias, summaries, config);
    let pcs: Vec<u64> = raw
        .branch_blocks
        .iter()
        .map(|&b| func.terminator_pc(b))
        .collect();
    let hash = find_perfect_hash(&pcs, func.pc_base, config.max_hash_log2)
        .expect("perfect hash search must succeed within the identity fallback");
    let branches: Vec<BranchInfo> = raw
        .branch_blocks
        .iter()
        .zip(&pcs)
        .map(|(&block, &pc)| BranchInfo {
            block,
            pc,
            slot: hash.slot(pc),
        })
        .collect();
    let sizes = table_sizes(&raw.bat, &branches, &hash);
    FunctionAnalysis {
        func: func.id,
        name: func.name.clone(),
        branches,
        checked: raw.checked,
        bat: raw.bat,
        hash,
        sizes,
    }
}

/// Runs alias analysis, summaries and per-function correlation over the
/// whole program.
pub fn analyze_program(program: &Program, config: &AnalysisConfig) -> ProgramAnalysis {
    let alias = AliasAnalysis::analyze(program);
    let summaries = Summaries::compute(program, &alias);
    let functions = program
        .functions
        .iter()
        .map(|f| analyze_function(program, f, &alias, &summaries, config))
        .collect();
    ProgramAnalysis { functions }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyzes_multi_function_programs() {
        let p = ipds_ir::parse(
            "int mode; \
             fn check() -> int { if (mode == 1) { return 1; } return 0; } \
             fn main() -> int { mode = read_int(); if (mode == 1) { print_int(1); } return check(); }",
        )
        .unwrap();
        let a = analyze_program(&p, &AnalysisConfig::default());
        assert_eq!(a.functions.len(), 2);
        assert_eq!(a.branch_count(), 2);
        // Hash slots are collision-free per function.
        for f in &a.functions {
            let mut seen = std::collections::HashSet::new();
            for b in &f.branches {
                assert!(seen.insert(b.slot), "collision in {}", f.name);
            }
        }
    }

    #[test]
    fn sizes_are_populated() {
        let p = ipds_ir::parse(
            "fn main() -> int { int x; x = read_int(); \
             if (x < 5) { print_int(1); } if (x < 5) { print_int(2); } return 0; }",
        )
        .unwrap();
        let a = analyze_program(&p, &AnalysisConfig::default());
        let m = a.of(ipds_ir::FuncId(0));
        assert!(m.sizes.bsv_bits >= 2 * m.branches.len());
        assert!(m.sizes.bat_bits > 16, "correlations present ⇒ BAT content");
        // Shape from the paper: BAT dominates BSV, BSV ≥ BCV.
        assert!(m.sizes.bat_bits > m.sizes.bcv_bits);
        assert_eq!(m.sizes.bsv_bits, 2 * m.sizes.bcv_bits);
    }

    #[test]
    fn ablation_switches_reduce_content() {
        let src = "fn main() -> int { int x; x = read_int(); \
             if (x < 5) { print_int(1); } if (x < 10) { print_int(2); } return 0; }";
        let p = ipds_ir::parse(src).unwrap();
        let full = analyze_program(&p, &AnalysisConfig::default());
        let none = analyze_program(
            &p,
            &AnalysisConfig {
                load_anchors: false,
                store_anchors: false,
                ..AnalysisConfig::default()
            },
        );
        assert!(full.checked_count() > 0);
        assert_eq!(none.checked_count(), 0);
        assert!(none.of(ipds_ir::FuncId(0)).bat.is_empty());
    }
}
