//! The whole-program analysis driver.
//!
//! The plain entry points ([`analyze_program`], [`analyze_function`]) keep
//! the original serial, panicking contract; the `try_*`/`*_threaded`
//! variants underneath are what the [`crate::pipeline`] pass manager runs —
//! fallible, counted, and sharded per function over the shared
//! [`ipds_parallel`] pool with results merged in function-id order (so the
//! [`ProgramAnalysis`] is bit-identical at any thread count).

use std::error::Error;
use std::fmt;

use ipds_dataflow::{AliasAnalysis, Facts, PrunedCfg, Summaries};
use ipds_ir::{FuncId, Function, Program};

use crate::correlate::build_tables_view;
use crate::encode::table_sizes;
use crate::hash::{find_perfect_hash_counted, PerfectHashError};
use crate::tables::{BranchInfo, FunctionAnalysis};

/// Tuning knobs for the analysis (ablation switches and limits).
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Use load-anchored triggers/targets (the paper's load→load loop).
    pub load_anchors: bool,
    /// Use store-anchored triggers (the paper's store→load loop).
    pub store_anchors: bool,
    /// Extension (off by default, documented in DESIGN.md): constant stores
    /// pin exact values and emit actions through the block's terminating
    /// branch.
    pub const_store: bool,
    /// Upper bound on the perfect-hash space (log2).
    pub max_hash_log2: u32,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            load_anchors: true,
            store_anchors: true,
            const_store: false,
            max_hash_log2: 24,
        }
    }
}

/// Analysis results for a whole program: one [`FunctionAnalysis`] per
/// function, in function-id order.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// Per-function tables, indexed by `FuncId`.
    pub functions: Vec<FunctionAnalysis>,
}

impl ProgramAnalysis {
    /// The analysis for `func`.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    pub fn of(&self, func: FuncId) -> &FunctionAnalysis {
        &self.functions[func.0 as usize]
    }

    /// Total branches across the program.
    pub fn branch_count(&self) -> usize {
        self.functions.iter().map(|f| f.branches.len()).sum()
    }

    /// Total checked branches across the program.
    pub fn checked_count(&self) -> usize {
        self.functions.iter().map(|f| f.checked_count()).sum()
    }
}

/// The perfect-hash search failed for one function — the only way
/// per-function analysis can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionHashError {
    /// The function whose branch PCs defeated the search.
    pub function: String,
    /// The underlying search failure.
    pub error: PerfectHashError,
}

impl fmt::Display for FunctionHashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "function `{}`: {}", self.function, self.error)
    }
}

impl Error for FunctionHashError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.error)
    }
}

/// Work counters from analyzing one function (or, summed, a program) —
/// the pipeline surfaces these as pass-scoped metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisCounters {
    /// Conditional branches seen.
    pub branches: u64,
    /// Branches whose BCV bit is set (correlations found a direction).
    pub checked: u64,
    /// BAT entries emitted across all rows.
    pub bat_entries: u64,
    /// Hash parameter sets rejected before each function's search succeeded.
    pub hash_retries: u64,
}

impl AnalysisCounters {
    /// Element-wise sum (commutative — safe to fold in any order).
    pub fn merge(&mut self, other: &AnalysisCounters) {
        self.branches += other.branches;
        self.checked += other.checked;
        self.bat_entries += other.bat_entries;
        self.hash_retries += other.hash_retries;
    }
}

/// Analyzes one function given shared whole-program facts.
///
/// # Panics
///
/// Panics if the perfect-hash search fails within `config.max_hash_log2`
/// (possible only for pathological functions with more than `2^24`
/// instructions).
pub fn analyze_function(
    program: &Program,
    func: &Function,
    alias: &AliasAnalysis,
    summaries: &Summaries,
    config: &AnalysisConfig,
) -> FunctionAnalysis {
    try_analyze_function(program, func, alias, summaries, config)
        .map(|(analysis, _)| analysis)
        .expect("perfect hash search must succeed within the identity fallback")
}

/// Fallible, counted per-function analysis: correlate → hash → encode for
/// one function.
///
/// # Errors
///
/// [`FunctionHashError`] when no collision-free hash exists within
/// `config.max_hash_log2` (only possible when the cap is below the identity
/// fallback for this function's instruction count).
pub fn try_analyze_function(
    program: &Program,
    func: &Function,
    alias: &AliasAnalysis,
    summaries: &Summaries,
    config: &AnalysisConfig,
) -> Result<(FunctionAnalysis, AnalysisCounters), FunctionHashError> {
    try_analyze_function_view(
        program,
        func,
        alias,
        summaries,
        config,
        &ipds_dataflow::PrunedFunction::default(),
    )
}

/// [`try_analyze_function`] over the feasibility-pruned view: correlation
/// discovery skips proved-dead edges and blocks, while the branch inventory,
/// PCs and perfect hash stay those of the full function.
pub fn try_analyze_function_view(
    program: &Program,
    func: &Function,
    alias: &AliasAnalysis,
    summaries: &Summaries,
    config: &AnalysisConfig,
    view: &ipds_dataflow::PrunedFunction,
) -> Result<(FunctionAnalysis, AnalysisCounters), FunctionHashError> {
    let raw = build_tables_view(program, func, alias, summaries, config, view);
    let pcs: Vec<u64> = raw
        .branch_blocks
        .iter()
        .map(|&b| func.terminator_pc(b))
        .collect();
    let (hash, hash_retries) = find_perfect_hash_counted(&pcs, func.pc_base, config.max_hash_log2)
        .map_err(|error| FunctionHashError {
            function: func.name.clone(),
            error,
        })?;
    let branches: Vec<BranchInfo> = raw
        .branch_blocks
        .iter()
        .zip(&pcs)
        .map(|(&block, &pc)| BranchInfo {
            block,
            pc,
            slot: hash.slot(pc),
        })
        .collect();
    let sizes = table_sizes(&raw.bat, &branches, &hash);
    let counters = AnalysisCounters {
        branches: branches.len() as u64,
        checked: raw.checked.iter().filter(|&&c| c).count() as u64,
        bat_entries: raw.bat.values().map(|v| v.len() as u64).sum(),
        hash_retries,
    };
    let analysis = FunctionAnalysis {
        func: func.id,
        name: func.name.clone(),
        branches,
        checked: raw.checked,
        bat: raw.bat,
        hash,
        sizes,
    };
    Ok((analysis, counters))
}

/// Runs alias analysis, summaries and per-function correlation over the
/// whole program.
pub fn analyze_program(program: &Program, config: &AnalysisConfig) -> ProgramAnalysis {
    let facts = Facts::compute(program);
    analyze_program_threaded(program, &facts.alias, &facts.summaries, config, 1)
        .map(|(analysis, _)| analysis)
        .expect("perfect hash search must succeed within the identity fallback")
}

/// Per-function correlation/hash/encode over precomputed whole-program
/// facts, sharded by [`FuncId`] across `threads` workers and merged in id
/// order — the result (and the summed counters) are **bit-identical** to
/// the serial path for any thread count.
///
/// # Errors
///
/// The first (in function-id order) [`FunctionHashError`], if any function's
/// hash search fails.
pub fn analyze_program_threaded(
    program: &Program,
    alias: &AliasAnalysis,
    summaries: &Summaries,
    config: &AnalysisConfig,
    threads: usize,
) -> Result<(ProgramAnalysis, AnalysisCounters), FunctionHashError> {
    let full = PrunedCfg::full(program);
    analyze_program_threaded_view(program, alias, summaries, config, threads, &full)
}

/// [`analyze_program_threaded`] over the feasibility-pruned view — the
/// sharding and id-order merge are identical, so the result stays
/// bit-identical to the serial path at any thread count.
///
/// # Errors
///
/// The first (in function-id order) [`FunctionHashError`], if any function's
/// hash search fails.
pub fn analyze_program_threaded_view(
    program: &Program,
    alias: &AliasAnalysis,
    summaries: &Summaries,
    config: &AnalysisConfig,
    threads: usize,
    view: &PrunedCfg,
) -> Result<(ProgramAnalysis, AnalysisCounters), FunctionHashError> {
    let (per_func, _) = ipds_parallel::map_indexed(
        program.functions.len() as u32,
        threads,
        |_| (),
        |(), i| {
            let func = &program.functions[i as usize];
            try_analyze_function_view(
                program,
                func,
                alias,
                summaries,
                config,
                view.function(func.id),
            )
        },
    );
    let mut functions = Vec::with_capacity(per_func.len());
    let mut counters = AnalysisCounters::default();
    for result in per_func {
        let (analysis, func_counters) = result?;
        counters.merge(&func_counters);
        functions.push(analysis);
    }
    Ok((ProgramAnalysis { functions }, counters))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyzes_multi_function_programs() {
        let p = ipds_ir::parse(
            "int mode; \
             fn check() -> int { if (mode == 1) { return 1; } return 0; } \
             fn main() -> int { mode = read_int(); if (mode == 1) { print_int(1); } return check(); }",
        )
        .unwrap();
        let a = analyze_program(&p, &AnalysisConfig::default());
        assert_eq!(a.functions.len(), 2);
        assert_eq!(a.branch_count(), 2);
        // Hash slots are collision-free per function.
        for f in &a.functions {
            let mut seen = std::collections::HashSet::new();
            for b in &f.branches {
                assert!(seen.insert(b.slot), "collision in {}", f.name);
            }
        }
    }

    #[test]
    fn sizes_are_populated() {
        let p = ipds_ir::parse(
            "fn main() -> int { int x; x = read_int(); \
             if (x < 5) { print_int(1); } if (x < 5) { print_int(2); } return 0; }",
        )
        .unwrap();
        let a = analyze_program(&p, &AnalysisConfig::default());
        let m = a.of(ipds_ir::FuncId(0));
        assert!(m.sizes.bsv_bits >= 2 * m.branches.len());
        assert!(m.sizes.bat_bits > 16, "correlations present ⇒ BAT content");
        // Shape from the paper: BAT dominates BSV, BSV ≥ BCV.
        assert!(m.sizes.bat_bits > m.sizes.bcv_bits);
        assert_eq!(m.sizes.bsv_bits, 2 * m.sizes.bcv_bits);
    }

    #[test]
    fn ablation_switches_reduce_content() {
        let src = "fn main() -> int { int x; x = read_int(); \
             if (x < 5) { print_int(1); } if (x < 10) { print_int(2); } return 0; }";
        let p = ipds_ir::parse(src).unwrap();
        let full = analyze_program(&p, &AnalysisConfig::default());
        let none = analyze_program(
            &p,
            &AnalysisConfig {
                load_anchors: false,
                store_anchors: false,
                ..AnalysisConfig::default()
            },
        );
        assert!(full.checked_count() > 0);
        assert_eq!(none.checked_count(), 0);
        assert!(none.of(ipds_ir::FuncId(0)).bat.is_empty());
    }
}
