//! The binary table image and function information table (Fig. 6).
//!
//! The paper's compiler attaches the BSV/BCV/BAT tables to the program
//! binary; at load time they are mapped into a reserved, hardware-protected
//! memory region, and a **function information table** tells the IPDS, for
//! each function, where its tables live, its entry address, and the hash
//! parameters to use ("The information includes entry addresses of BSV, BCV
//! and BAT, the entry address of the function, hash function parameters
//! etc.").
//!
//! [`TableImage::build`] serializes a whole [`ProgramAnalysis`] into one
//! self-contained byte image; [`TableImage::load`] reconstructs an
//! equivalent analysis. The round trip is exact (tested per workload), so
//! the runtime can be driven entirely from the attached image — proving the
//! compiler→binary→runtime hand-off the paper describes actually carries
//! all the information it needs.
//!
//! ## Layout
//!
//! ```text
//! [magic "IPDS" u32] [version u16] [function count u16]
//! per function (the function information table):
//!   [entry pc u64] [hash: shift1 u8, shift2 u8, log2_size u8, pad u8]
//!   [branch count u16] [bcv offset u32] [bat offset u32] [bat len u32]
//! then the payload pool:
//!   per function: packed branch PCs (delta-coded u16 ×4 from entry),
//!                 packed BCV bits, packed BAT (the encode.rs format)
//! ```

use std::error::Error;
use std::fmt;

use ipds_ir::{BlockId, FuncId};

use crate::compile::ProgramAnalysis;
use crate::encode::{decode_bat, encode_bat, table_sizes, BitReader, BitWriter};
use crate::hash::HashParams;
use crate::tables::{BranchInfo, FunctionAnalysis};

const MAGIC: u32 = 0x4950_4453; // "IPDS"
const VERSION: u16 = 1;

/// A serialized whole-program table image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableImage {
    bytes: Vec<u8>,
}

/// Image parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPDS table image: {}", self.message)
    }
}

impl Error for ImageError {}

fn err(message: impl Into<String>) -> ImageError {
    ImageError {
        message: message.into(),
    }
}

impl TableImage {
    /// Serializes an analysis into an attachable image.
    pub fn build(analysis: &ProgramAnalysis) -> TableImage {
        let mut w = BitWriter::new();
        w.push(MAGIC as u64, 32);
        w.push(VERSION as u64, 16);
        w.push(analysis.functions.len() as u64, 16);

        // Payload pool assembled first so the info table can carry offsets.
        let mut pool: Vec<u8> = Vec::new();
        let mut entries: Vec<(u32, u32, u32)> = Vec::new(); // (bcv_off, bat_off, bat_len)
        for f in &analysis.functions {
            // Branch PCs: delta-coded in instruction units from the base.
            let mut fw = BitWriter::new();
            for b in &f.branches {
                let delta = (b.pc - f.hash.pc_base) >> 2;
                fw.push(delta, 16);
            }
            // BCV bits in branch order.
            for &c in &f.checked {
                fw.push(c as u64, 1);
            }
            let branch_bytes = fw.into_bytes();
            let bcv_off = pool.len() as u32;
            pool.extend_from_slice(&branch_bytes);
            let bat = encode_bat(&f.bat, &f.branches, &f.hash);
            let bat_off = pool.len() as u32;
            let bat_len = bat.len() as u32;
            pool.extend_from_slice(&bat);
            entries.push((bcv_off, bat_off, bat_len));
        }

        for (f, (bcv_off, bat_off, bat_len)) in analysis.functions.iter().zip(&entries) {
            w.push(f.hash.pc_base, 64);
            w.push(f.hash.shift1 as u64, 8);
            w.push(f.hash.shift2 as u64, 8);
            w.push(f.hash.log2_size as u64, 8);
            w.push(0, 8); // pad
            w.push(f.branches.len() as u64, 16);
            w.push(*bcv_off as u64, 32);
            w.push(*bat_off as u64, 32);
            w.push(*bat_len as u64, 32);
        }
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&pool);
        TableImage { bytes }
    }

    /// The raw bytes (what would be appended to the binary).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Total image size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the image is empty (never: the header is always present).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Wraps raw bytes (e.g. read back from a binary) for loading.
    pub fn from_bytes(bytes: Vec<u8>) -> TableImage {
        TableImage { bytes }
    }

    /// Reconstructs the analysis tables from the image.
    ///
    /// Function names and branch block-ids are not stored in the image (the
    /// hardware only needs PCs); loaded analyses carry placeholder names
    /// and sequential block ids, which the runtime never consults.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError`] on a bad magic/version, truncated header, or
    /// malformed payload.
    pub fn load(&self) -> Result<ProgramAnalysis, ImageError> {
        let mut r = BitReader::new(&self.bytes);
        if r.read(32) != Some(MAGIC as u64) {
            return Err(err("bad magic"));
        }
        if r.read(16) != Some(VERSION as u64) {
            return Err(err("unsupported version"));
        }
        let count = r.read(16).ok_or_else(|| err("truncated header"))? as usize;

        struct Info {
            pc_base: u64,
            hash: HashParams,
            branch_count: usize,
            bcv_off: usize,
            bat_off: usize,
            bat_len: usize,
        }
        let mut infos = Vec::with_capacity(count);
        for _ in 0..count {
            let pc_base = r.read(64).ok_or_else(|| err("truncated info table"))?;
            let shift1 = r.read(8).ok_or_else(|| err("truncated info table"))? as u32;
            let shift2 = r.read(8).ok_or_else(|| err("truncated info table"))? as u32;
            let log2_size = r.read(8).ok_or_else(|| err("truncated info table"))? as u32;
            let _pad = r.read(8).ok_or_else(|| err("truncated info table"))?;
            let branch_count = r.read(16).ok_or_else(|| err("truncated info table"))? as usize;
            let bcv_off = r.read(32).ok_or_else(|| err("truncated info table"))? as usize;
            let bat_off = r.read(32).ok_or_else(|| err("truncated info table"))? as usize;
            let bat_len = r.read(32).ok_or_else(|| err("truncated info table"))? as usize;
            infos.push(Info {
                pc_base,
                hash: HashParams {
                    shift1,
                    shift2,
                    log2_size,
                    pc_base,
                },
                branch_count,
                bcv_off,
                bat_off,
                bat_len,
            });
        }

        // Header length in bytes: 8 (magic+version+count) plus 26 per
        // function entry (64+8+8+8+8+16+32+32+32 bits).
        let header_len = 8 + count * 26;
        let pool = self
            .bytes
            .get(header_len..)
            .ok_or_else(|| err("missing payload pool"))?;

        let mut functions = Vec::with_capacity(count);
        for (i, info) in infos.iter().enumerate() {
            let branch_bits = info.branch_count * 16 + info.branch_count;
            let branch_bytes = branch_bits.div_ceil(8);
            let slice = pool
                .get(info.bcv_off..info.bcv_off + branch_bytes)
                .ok_or_else(|| err("branch table out of range"))?;
            let mut fr = BitReader::new(slice);
            let mut branches = Vec::with_capacity(info.branch_count);
            for b in 0..info.branch_count {
                let delta = fr.read(16).ok_or_else(|| err("truncated branch pcs"))?;
                let pc = info.pc_base + (delta << 2);
                branches.push(BranchInfo {
                    block: BlockId(b as u32),
                    pc,
                    slot: info.hash.slot(pc),
                });
            }
            let mut checked = Vec::with_capacity(info.branch_count);
            for _ in 0..info.branch_count {
                checked.push(fr.read(1).ok_or_else(|| err("truncated BCV"))? != 0);
            }
            let bat_slice = pool
                .get(info.bat_off..info.bat_off + info.bat_len)
                .ok_or_else(|| err("BAT out of range"))?;
            let bat =
                decode_bat(bat_slice, &branches, &info.hash).ok_or_else(|| err("malformed BAT"))?;
            let sizes = table_sizes(&bat, &branches, &info.hash);
            functions.push(FunctionAnalysis {
                func: FuncId(i as u32),
                name: format!("fn#{i}"),
                branches,
                checked,
                bat,
                hash: info.hash,
                sizes,
            });
        }
        Ok(ProgramAnalysis { functions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{analyze_program, AnalysisConfig};

    fn analysis() -> ProgramAnalysis {
        let p = ipds_ir::parse(
            "fn helper(int v) -> int { if (v < 3) { return 1; } return 0; } \
             fn main() -> int { int x; x = read_int(); \
             if (x < 5) { print_int(1); } \
             if (x < 10) { print_int(2); } \
             return helper(x); }",
        )
        .unwrap();
        analyze_program(&p, &AnalysisConfig::default())
    }

    #[test]
    fn image_roundtrips_tables() {
        let a = analysis();
        let image = TableImage::build(&a);
        assert!(!image.is_empty());
        let loaded = image.load().expect("valid image");
        assert_eq!(loaded.functions.len(), a.functions.len());
        for (orig, back) in a.functions.iter().zip(&loaded.functions) {
            assert_eq!(orig.branches.len(), back.branches.len());
            for (b1, b2) in orig.branches.iter().zip(&back.branches) {
                assert_eq!(b1.pc, b2.pc);
                assert_eq!(b1.slot, b2.slot);
            }
            assert_eq!(orig.checked, back.checked);
            assert_eq!(orig.bat, back.bat);
            assert_eq!(orig.hash, back.hash);
            assert_eq!(orig.sizes, back.sizes);
        }
    }

    #[test]
    fn image_survives_byte_transport() {
        let a = analysis();
        let image = TableImage::build(&a);
        let copied = TableImage::from_bytes(image.as_bytes().to_vec());
        assert_eq!(copied.load().unwrap().functions.len(), a.functions.len());
    }

    #[test]
    fn corrupted_images_are_rejected() {
        let a = analysis();
        let image = TableImage::build(&a);
        // Bad magic.
        let mut bad = image.as_bytes().to_vec();
        bad[0] ^= 0xFF;
        assert!(TableImage::from_bytes(bad).load().is_err());
        // Truncation.
        let mut short = image.as_bytes().to_vec();
        short.truncate(short.len() / 2);
        assert!(TableImage::from_bytes(short).load().is_err());
        // Empty.
        assert!(TableImage::from_bytes(Vec::new()).load().is_err());
    }
}
