//! The binary table image and function information table (Fig. 6).
//!
//! The paper's compiler attaches the BSV/BCV/BAT tables to the program
//! binary; at load time they are mapped into a reserved, hardware-protected
//! memory region, and a **function information table** tells the IPDS, for
//! each function, where its tables live, its entry address, and the hash
//! parameters to use ("The information includes entry addresses of BSV, BCV
//! and BAT, the entry address of the function, hash function parameters
//! etc.").
//!
//! [`TableImage::build`] serializes a whole [`ProgramAnalysis`] into one
//! self-contained byte image; [`TableImage::load`] reconstructs an
//! equivalent analysis. The round trip is exact (tested per workload), so
//! the runtime can be driven entirely from the attached image — proving the
//! compiler→binary→runtime hand-off the paper describes actually carries
//! all the information it needs.
//!
//! ## Layout (version 2)
//!
//! ```text
//! [magic "IPDS" u32] [version u16] [function count u16] [fnv1a-32 checksum u32]
//! per function (the function information table):
//!   [entry pc u64] [hash: shift1 u8, shift2 u8, log2_size u8, pad u8]
//!   [branch count u16] [bcv offset u32] [bat offset u32] [bat len u32]
//! then the payload pool:
//!   per function: packed branch PCs (delta-coded u16 ×4 from entry),
//!                 packed BCV bits, packed BAT (the encode.rs format)
//! ```
//!
//! The checksum covers everything after itself (info table + pool), so a
//! corrupted image — *any* single bit flip, including in fields like
//! `entry pc` whose every value is structurally plausible — is rejected
//! with a typed [`ImageError`] instead of silently loading wrong tables.

use std::error::Error;
use std::fmt;

use ipds_ir::{BlockId, FuncId};

use crate::compile::ProgramAnalysis;
use crate::encode::{decode_bat, encode_bat, table_sizes, BitReader, BitWriter};
use crate::hash::HashParams;
use crate::tables::{BranchInfo, FunctionAnalysis};

const MAGIC: u32 = 0x4950_4453; // "IPDS"
const VERSION: u16 = 2;
/// Bytes before the info table: magic + version + count + checksum.
const HEADER_BYTES: usize = 12;
/// Info-table bytes per function: 64+8+8+8+8+16+32+32+32 bits.
const INFO_BYTES: usize = 26;

/// A serialized whole-program table image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableImage {
    bytes: Vec<u8>,
}

/// Image parsing failed — each variant names the specific field or section
/// that was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The leading magic was not `"IPDS"`.
    BadMagic {
        /// The 32-bit value found instead.
        found: u32,
    },
    /// The version field names a format this loader does not speak.
    UnsupportedVersion {
        /// The version found.
        found: u16,
        /// The version this loader writes and reads.
        expected: u16,
    },
    /// The image ended before the named section was complete.
    Truncated {
        /// Which section could not be fully read.
        section: &'static str,
    },
    /// The stored checksum does not match the payload — the image was
    /// corrupted in transport or tampered with.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u32,
        /// Checksum recomputed over the payload.
        computed: u32,
    },
    /// An info-table offset or length points outside the payload pool.
    OutOfRange {
        /// Which table the bad reference belongs to.
        section: &'static str,
        /// Index of the offending function entry.
        function: usize,
    },
    /// A BAT section failed to decode (truncated rows or unknown slots).
    MalformedBat {
        /// Index of the offending function entry.
        function: usize,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPDS table image: ")?;
        match self {
            ImageError::BadMagic { found } => write!(f, "bad magic {found:#010x}"),
            ImageError::UnsupportedVersion { found, expected } => {
                write!(f, "unsupported version {found} (expected {expected})")
            }
            ImageError::Truncated { section } => write!(f, "truncated {section}"),
            ImageError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            ImageError::OutOfRange { section, function } => {
                write!(f, "function {function}: {section} out of range")
            }
            ImageError::MalformedBat { function } => {
                write!(f, "function {function}: malformed BAT")
            }
        }
    }
}

impl Error for ImageError {}

/// FNV-1a (32-bit) over every image byte except the checksum field itself —
/// the leading magic/version/count AND the info table + pool, so a bit flip
/// anywhere (including the `function count`, which the payload hash alone
/// would miss) is caught. An in-repo integrity check, not a cryptographic
/// MAC: it guards against corruption, not adversaries who can rewrite the
/// image *and* its checksum.
fn image_checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    let mut update = |chunk: &[u8]| {
        for &b in chunk {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
    };
    update(&bytes[..8]);
    update(&bytes[HEADER_BYTES..]);
    h
}

impl TableImage {
    /// Serializes an analysis into an attachable image.
    pub fn build(analysis: &ProgramAnalysis) -> TableImage {
        let mut w = BitWriter::new();
        w.push(MAGIC as u64, 32);
        w.push(VERSION as u64, 16);
        w.push(analysis.functions.len() as u64, 16);
        w.push(0, 32); // checksum placeholder, patched below

        // Payload pool assembled first so the info table can carry offsets.
        let mut pool: Vec<u8> = Vec::new();
        let mut entries: Vec<(u32, u32, u32)> = Vec::new(); // (bcv_off, bat_off, bat_len)
        for f in &analysis.functions {
            // Branch PCs: delta-coded in instruction units from the base.
            let mut fw = BitWriter::new();
            for b in &f.branches {
                let delta = (b.pc - f.hash.pc_base) >> 2;
                fw.push(delta, 16);
            }
            // BCV bits in branch order.
            for &c in &f.checked {
                fw.push(c as u64, 1);
            }
            let branch_bytes = fw.into_bytes();
            let bcv_off = pool.len() as u32;
            pool.extend_from_slice(&branch_bytes);
            let bat = encode_bat(&f.bat, &f.branches, &f.hash);
            let bat_off = pool.len() as u32;
            let bat_len = bat.len() as u32;
            pool.extend_from_slice(&bat);
            entries.push((bcv_off, bat_off, bat_len));
        }

        for (f, (bcv_off, bat_off, bat_len)) in analysis.functions.iter().zip(&entries) {
            w.push(f.hash.pc_base, 64);
            w.push(f.hash.shift1 as u64, 8);
            w.push(f.hash.shift2 as u64, 8);
            w.push(f.hash.log2_size as u64, 8);
            w.push(0, 8); // pad
            w.push(f.branches.len() as u64, 16);
            w.push(*bcv_off as u64, 32);
            w.push(*bat_off as u64, 32);
            w.push(*bat_len as u64, 32);
        }
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&pool);
        // All header fields are byte-aligned (32+16+16+32 bits), so the
        // checksum lives at bytes 8..12, MSB first like every other field.
        let checksum = image_checksum(&bytes);
        bytes[8..HEADER_BYTES].copy_from_slice(&checksum.to_be_bytes());
        TableImage { bytes }
    }

    /// The raw bytes (what would be appended to the binary).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Total image size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the image is empty (never: the header is always present).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Wraps raw bytes (e.g. read back from a binary) for loading.
    pub fn from_bytes(bytes: Vec<u8>) -> TableImage {
        TableImage { bytes }
    }

    /// Byte offset where the payload pool starts (after the header and the
    /// function information table), parsed from the header's function count.
    /// `None` if the image is shorter than a header.
    pub fn payload_offset(&self) -> Option<usize> {
        if self.bytes.len() < HEADER_BYTES {
            return None;
        }
        let count = u16::from_be_bytes([self.bytes[6], self.bytes[7]]) as usize;
        Some(HEADER_BYTES + count * INFO_BYTES)
    }

    /// The checksum the header *claims* (bytes 8..12, MSB first), or `None`
    /// on images too short to carry a header. Cache keys derive from this —
    /// it identifies an image build without hashing the whole payload.
    /// Whether the claim is *true* is only established by
    /// [`TableImage::load`].
    pub fn checksum(&self) -> Option<u32> {
        if self.bytes.len() < HEADER_BYTES {
            return None;
        }
        Some(u32::from_be_bytes([
            self.bytes[8],
            self.bytes[9],
            self.bytes[10],
            self.bytes[11],
        ]))
    }

    /// Recomputes and rewrites the header checksum over the current bytes.
    ///
    /// The fault-injection engine uses this to model a loader with its
    /// integrity check *disabled*: corrupting the payload and restamping
    /// the checksum lets the image load, so the campaign can measure
    /// whether the runtime catches the corruption instead. No-op on images
    /// too short to carry a header.
    pub fn restamp_checksum(&mut self) {
        if self.bytes.len() >= HEADER_BYTES {
            let checksum = image_checksum(&self.bytes);
            self.bytes[8..HEADER_BYTES].copy_from_slice(&checksum.to_be_bytes());
        }
    }

    /// Reconstructs the analysis tables from the image.
    ///
    /// Function names and branch block-ids are not stored in the image (the
    /// hardware only needs PCs); loaded analyses carry placeholder names
    /// and sequential block ids, which the runtime never consults.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError`] on a bad magic/version, truncation anywhere, a
    /// checksum mismatch (any bit flip in the info table or pool), an
    /// out-of-range table reference, or a malformed BAT section.
    pub fn load(&self) -> Result<ProgramAnalysis, ImageError> {
        let mut r = BitReader::new(&self.bytes);
        let magic = r
            .read(32)
            .ok_or(ImageError::Truncated { section: "header" })?;
        if magic != MAGIC as u64 {
            return Err(ImageError::BadMagic {
                found: magic as u32,
            });
        }
        let version = r
            .read(16)
            .ok_or(ImageError::Truncated { section: "header" })?;
        if version != VERSION as u64 {
            return Err(ImageError::UnsupportedVersion {
                found: version as u16,
                expected: VERSION,
            });
        }
        let count = r
            .read(16)
            .ok_or(ImageError::Truncated { section: "header" })? as usize;
        let stored = r
            .read(32)
            .ok_or(ImageError::Truncated { section: "header" })? as u32;
        let computed = image_checksum(&self.bytes);
        if stored != computed {
            return Err(ImageError::ChecksumMismatch { stored, computed });
        }

        struct Info {
            pc_base: u64,
            hash: HashParams,
            branch_count: usize,
            bcv_off: usize,
            bat_off: usize,
            bat_len: usize,
        }
        let truncated_info = ImageError::Truncated {
            section: "function information table",
        };
        let mut infos = Vec::with_capacity(count);
        for _ in 0..count {
            let pc_base = r.read(64).ok_or(truncated_info.clone())?;
            let shift1 = r.read(8).ok_or(truncated_info.clone())? as u32;
            let shift2 = r.read(8).ok_or(truncated_info.clone())? as u32;
            let log2_size = r.read(8).ok_or(truncated_info.clone())? as u32;
            let _pad = r.read(8).ok_or(truncated_info.clone())?;
            let branch_count = r.read(16).ok_or(truncated_info.clone())? as usize;
            let bcv_off = r.read(32).ok_or(truncated_info.clone())? as usize;
            let bat_off = r.read(32).ok_or(truncated_info.clone())? as usize;
            let bat_len = r.read(32).ok_or(truncated_info.clone())? as usize;
            infos.push(Info {
                pc_base,
                hash: HashParams {
                    shift1,
                    shift2,
                    log2_size,
                    pc_base,
                },
                branch_count,
                bcv_off,
                bat_off,
                bat_len,
            });
        }

        let header_len = HEADER_BYTES + count * INFO_BYTES;
        let pool = self.bytes.get(header_len..).ok_or(ImageError::Truncated {
            section: "payload pool",
        })?;

        let mut functions = Vec::with_capacity(count);
        for (i, info) in infos.iter().enumerate() {
            let branch_bits = info.branch_count * 16 + info.branch_count;
            let branch_bytes = branch_bits.div_ceil(8);
            let slice = info
                .bcv_off
                .checked_add(branch_bytes)
                .and_then(|end| pool.get(info.bcv_off..end))
                .ok_or(ImageError::OutOfRange {
                    section: "branch/BCV table",
                    function: i,
                })?;
            let mut fr = BitReader::new(slice);
            let mut branches = Vec::with_capacity(info.branch_count);
            for b in 0..info.branch_count {
                let delta = fr.read(16).ok_or(ImageError::Truncated {
                    section: "branch pcs",
                })?;
                let pc = info.pc_base + (delta << 2);
                branches.push(BranchInfo {
                    block: BlockId(b as u32),
                    pc,
                    slot: info.hash.slot(pc),
                });
            }
            let mut checked = Vec::with_capacity(info.branch_count);
            for _ in 0..info.branch_count {
                checked.push(fr.read(1).ok_or(ImageError::Truncated { section: "BCV" })? != 0);
            }
            let bat_slice = info
                .bat_off
                .checked_add(info.bat_len)
                .and_then(|end| pool.get(info.bat_off..end))
                .ok_or(ImageError::OutOfRange {
                    section: "BAT",
                    function: i,
                })?;
            let bat = decode_bat(bat_slice, &branches, &info.hash)
                .ok_or(ImageError::MalformedBat { function: i })?;
            let sizes = table_sizes(&bat, &branches, &info.hash);
            functions.push(FunctionAnalysis {
                func: FuncId(i as u32),
                name: format!("fn#{i}"),
                branches,
                checked,
                bat,
                hash: info.hash,
                sizes,
            });
        }
        Ok(ProgramAnalysis { functions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{analyze_program, AnalysisConfig};

    fn analysis() -> ProgramAnalysis {
        let p = ipds_ir::parse(
            "fn helper(int v) -> int { if (v < 3) { return 1; } return 0; } \
             fn main() -> int { int x; x = read_int(); \
             if (x < 5) { print_int(1); } \
             if (x < 10) { print_int(2); } \
             return helper(x); }",
        )
        .unwrap();
        analyze_program(&p, &AnalysisConfig::default())
    }

    #[test]
    fn image_roundtrips_tables() {
        let a = analysis();
        let image = TableImage::build(&a);
        assert!(!image.is_empty());
        let loaded = image.load().expect("valid image");
        assert_eq!(loaded.functions.len(), a.functions.len());
        for (orig, back) in a.functions.iter().zip(&loaded.functions) {
            assert_eq!(orig.branches.len(), back.branches.len());
            for (b1, b2) in orig.branches.iter().zip(&back.branches) {
                assert_eq!(b1.pc, b2.pc);
                assert_eq!(b1.slot, b2.slot);
            }
            assert_eq!(orig.checked, back.checked);
            assert_eq!(orig.bat, back.bat);
            assert_eq!(orig.hash, back.hash);
            assert_eq!(orig.sizes, back.sizes);
        }
    }

    #[test]
    fn image_survives_byte_transport() {
        let a = analysis();
        let image = TableImage::build(&a);
        let copied = TableImage::from_bytes(image.as_bytes().to_vec());
        assert_eq!(copied.load().unwrap().functions.len(), a.functions.len());
    }

    #[test]
    fn corrupted_images_are_rejected() {
        let a = analysis();
        let image = TableImage::build(&a);
        // Bad magic.
        let mut bad = image.as_bytes().to_vec();
        bad[0] ^= 0xFF;
        assert!(matches!(
            TableImage::from_bytes(bad).load(),
            Err(ImageError::BadMagic { .. })
        ));
        // Wrong version.
        let mut old = image.as_bytes().to_vec();
        old[5] ^= 0x01;
        assert!(matches!(
            TableImage::from_bytes(old).load(),
            Err(ImageError::UnsupportedVersion { .. })
        ));
        // Truncation.
        let mut short = image.as_bytes().to_vec();
        short.truncate(short.len() / 2);
        assert!(TableImage::from_bytes(short).load().is_err());
        // Empty.
        assert!(matches!(
            TableImage::from_bytes(Vec::new()).load(),
            Err(ImageError::Truncated { .. })
        ));
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        // The full corruption matrix: flipping ANY bit of the image — every
        // header field, every info-table entry, every pool byte — must yield
        // a typed error, never a panic and never a silently-different load.
        let a = analysis();
        let image = TableImage::build(&a);
        let bytes = image.as_bytes();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.to_vec();
                flipped[byte] ^= 1 << bit;
                let result = TableImage::from_bytes(flipped).load();
                assert!(
                    result.is_err(),
                    "bit {bit} of byte {byte} flipped but load() still succeeded"
                );
            }
        }
    }

    #[test]
    fn every_truncation_point_is_rejected() {
        let a = analysis();
        let image = TableImage::build(&a);
        for len in 0..image.len() {
            let mut short = image.as_bytes().to_vec();
            short.truncate(len);
            assert!(
                TableImage::from_bytes(short).load().is_err(),
                "truncation to {len} bytes was not rejected"
            );
        }
    }

    #[test]
    fn error_messages_name_the_field() {
        let e = ImageError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum mismatch"));
        let e = ImageError::OutOfRange {
            section: "BAT",
            function: 3,
        };
        assert!(e.to_string().contains("function 3"));
        assert!(e.to_string().contains("BAT"));
    }
}
