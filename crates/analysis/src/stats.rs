//! Aggregate table-size statistics (Fig. 8 of the paper).

use crate::compile::ProgramAnalysis;

/// Average per-function table sizes in bits, as reported in Fig. 8 (the
/// paper measured BSV ≈ 34, BCV ≈ 17, BAT ≈ 393 on its server benchmarks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeStats {
    /// Number of functions aggregated.
    pub functions: usize,
    /// Mean BSV bits per function.
    pub avg_bsv_bits: f64,
    /// Mean BCV bits per function.
    pub avg_bcv_bits: f64,
    /// Mean BAT bits per function.
    pub avg_bat_bits: f64,
    /// Mean branches per function.
    pub avg_branches: f64,
    /// Mean checked branches per function.
    pub avg_checked: f64,
    /// Mean BAT entries per function.
    pub avg_bat_entries: f64,
}

impl SizeStats {
    /// Aggregates over a program's analysis.
    pub fn collect(analysis: &ProgramAnalysis) -> SizeStats {
        let n = analysis.functions.len().max(1) as f64;
        let mut s = SizeStats {
            functions: analysis.functions.len(),
            avg_bsv_bits: 0.0,
            avg_bcv_bits: 0.0,
            avg_bat_bits: 0.0,
            avg_branches: 0.0,
            avg_checked: 0.0,
            avg_bat_entries: 0.0,
        };
        for f in &analysis.functions {
            s.avg_bsv_bits += f.sizes.bsv_bits as f64;
            s.avg_bcv_bits += f.sizes.bcv_bits as f64;
            s.avg_bat_bits += f.sizes.bat_bits as f64;
            s.avg_branches += f.branches.len() as f64;
            s.avg_checked += f.checked_count() as f64;
            s.avg_bat_entries += f.bat_entry_count() as f64;
        }
        s.avg_bsv_bits /= n;
        s.avg_bcv_bits /= n;
        s.avg_bat_bits /= n;
        s.avg_branches /= n;
        s.avg_checked /= n;
        s.avg_bat_entries /= n;
        s
    }

    /// Aggregates several per-program stats into one weighted average.
    pub fn merge(all: &[SizeStats]) -> SizeStats {
        let total_fns: usize = all.iter().map(|s| s.functions).sum();
        let w = |f: fn(&SizeStats) -> f64| -> f64 {
            if total_fns == 0 {
                return 0.0;
            }
            all.iter().map(|s| f(s) * s.functions as f64).sum::<f64>() / total_fns as f64
        };
        SizeStats {
            functions: total_fns,
            avg_bsv_bits: w(|s| s.avg_bsv_bits),
            avg_bcv_bits: w(|s| s.avg_bcv_bits),
            avg_bat_bits: w(|s| s.avg_bat_bits),
            avg_branches: w(|s| s.avg_branches),
            avg_checked: w(|s| s.avg_checked),
            avg_bat_entries: w(|s| s.avg_bat_entries),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{analyze_program, AnalysisConfig};

    #[test]
    fn collects_and_merges() {
        let p = ipds_ir::parse(
            "fn a() -> int { int x; x = read_int(); if (x < 3) { return 1; } return 0; } \
             fn main() -> int { return a(); }",
        )
        .unwrap();
        let an = analyze_program(&p, &AnalysisConfig::default());
        let s = SizeStats::collect(&an);
        assert_eq!(s.functions, 2);
        assert!(s.avg_bsv_bits > 0.0);
        assert_eq!(s.avg_bsv_bits, 2.0 * s.avg_bcv_bits);

        let merged = SizeStats::merge(&[s, s]);
        assert_eq!(merged.functions, 4);
        assert!((merged.avg_bat_bits - s.avg_bat_bits).abs() < 1e-9);
    }

    #[test]
    fn empty_merge_is_zero() {
        let m = SizeStats::merge(&[]);
        assert_eq!(m.functions, 0);
        assert_eq!(m.avg_bsv_bits, 0.0);
    }
}
