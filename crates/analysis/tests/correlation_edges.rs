//! Edge cases of the correlation construction that the unit tests don't
//! reach: call-result flags, untraceable arithmetic, cross-function
//! isolation, short-circuit chains, and deeply nested regions.

use ipds_analysis::{analyze_program, AnalysisConfig, BrAction, ProgramAnalysis};
use ipds_ir::Program;

fn analyze(src: &str) -> (Program, ProgramAnalysis) {
    let p = ipds_ir::parse(src).unwrap();
    let a = analyze_program(&p, &AnalysisConfig::default());
    (p, a)
}

#[test]
fn call_result_flag_correlates_between_tests() {
    // The Fig. 1 idiom through a library call: strcmp's result is opaque,
    // but once stored to `rc`, the two `rc == 0` tests must agree.
    let (_, a) = analyze(
        "fn main() -> int { int rc; int buf[8]; \
         strcpy(buf, \"admin\"); \
         rc = strcmp(buf, \"admin\"); \
         if (rc == 0) { print_int(1); } \
         print_int(7); \
         if (rc == 0) { print_int(2); } \
         return rc; }",
    );
    let main = &a.functions[0];
    assert_eq!(main.branches.len(), 2);
    assert!(main.checked[0] && main.checked[1]);
    let row = main.actions(0, true);
    assert!(
        row.iter()
            .any(|e| e.target == 1 && e.action == BrAction::SetTaken),
        "{row:?}"
    );
}

#[test]
fn nonaffine_arithmetic_defeats_anchoring() {
    // x % 2 is not an affine image of x: the branch must stay unanchored
    // (conservative, not wrong).
    let (_, a) = analyze(
        "fn main() -> int { int x; x = read_int(); \
         if (x % 2 == 0) { print_int(1); } \
         if (x % 2 == 0) { print_int(2); } \
         return 0; }",
    );
    let main = &a.functions[0];
    // Neither branch can be checked: their conditions trace to a Rem.
    assert!(!main.checked.iter().any(|&c| c), "{:?}", main.checked);
}

#[test]
fn multiplication_defeats_anchoring_but_addition_does_not() {
    let (_, a) = analyze(
        "fn main() -> int { int x; x = read_int(); \
         if (x * 2 < 10) { print_int(1); } \
         if (x + 2 < 10) { print_int(2); } \
         if (x + 2 < 10) { print_int(3); } \
         return 0; }",
    );
    let main = &a.functions[0];
    assert!(!main.checked[0], "x*2 is not affine(±1)");
    assert!(main.checked[1] || main.checked[2], "x+2 is affine");
}

#[test]
fn correlations_never_cross_functions() {
    // The same global tested in two functions: each function's BAT may only
    // reference its own branches (tables are per-function, stacked).
    let (_, a) = analyze(
        "int mode; \
         fn check() -> int { if (mode == 1) { return 1; } return 0; } \
         fn main() -> int { mode = read_int(); \
         if (mode == 1) { print_int(1); } return check(); }",
    );
    for f in &a.functions {
        let n = f.branches.len() as u32;
        for ((trigger, _), entries) in &f.bat {
            assert!(*trigger < n, "{}: trigger out of range", f.name);
            for e in entries {
                assert!(e.target < n, "{}: target out of range", f.name);
            }
        }
    }
}

#[test]
fn short_circuit_chain_correlates_piecewise() {
    // `a < 5 && a < 10` in one condition: the second test is subsumed by
    // the first within the same chain.
    let (_, a) = analyze(
        "fn main() -> int { int v; v = read_int(); \
         if (v < 5 && v < 10) { print_int(1); } \
         return 0; }",
    );
    let main = &a.functions[0];
    assert_eq!(main.branches.len(), 2, "two primitive branches");
    // First branch taken (v ≤ 4) forces the second (v < 10) taken.
    let row = main.actions(0, true);
    assert!(
        row.iter()
            .any(|e| e.target == 1 && e.action == BrAction::SetTaken),
        "{row:?}"
    );
}

#[test]
fn nested_region_kill_reaches_through_blocks() {
    // The killing store hides two scopes deep behind unconditional jumps;
    // the region walk must still attach the SET_UN.
    let (_, a) = analyze(
        "fn main() -> int { int x; int t; x = read_int(); t = read_int(); \
         if (x < 5) { print_int(1); } \
         if (t < 0) { { { x = read_int(); print_int(9); } } } \
         if (x < 5) { print_int(2); } \
         return 0; }",
    );
    let main = &a.functions[0];
    // Branch 1 is the t-test; its taken edge must kill the x-tests.
    let row = main.actions(1, true);
    assert!(
        row.iter().any(|e| e.action == BrAction::SetUnknown),
        "{row:?}"
    );
    // And the not-taken edge must not.
    let row_nt = main.actions(1, false);
    assert!(
        row_nt.iter().all(|e| e.action != BrAction::SetUnknown),
        "{row_nt:?}"
    );
}

#[test]
fn equality_and_inequality_ranges_compose() {
    // x == 7 taken ⇒ x != 3 test must be taken; x != 7 (not-taken of the
    // first) doesn't determine x != 3.
    let (_, a) = analyze(
        "fn main() -> int { int x; x = read_int(); \
         if (x == 7) { print_int(1); } \
         if (x != 3) { print_int(2); } \
         return 0; }",
    );
    let main = &a.functions[0];
    let row_t = main.actions(0, true);
    assert!(
        row_t
            .iter()
            .any(|e| e.target == 1 && e.action == BrAction::SetTaken),
        "{row_t:?}"
    );
    let row_nt = main.actions(0, false);
    assert!(
        row_nt
            .iter()
            .all(|e| e.target != 1 || e.action == BrAction::SetUnknown),
        "x != 7 says nothing about x != 3: {row_nt:?}"
    );
}

#[test]
fn recursion_analyzes_without_divergence() {
    let (_, a) = analyze(
        "fn f(int n) -> int { if (n <= 0) { return 0; } return f(n - 1) + n; } \
         fn main() -> int { return f(read_int()); }",
    );
    assert_eq!(a.functions.len(), 2);
    // The recursive call kills nothing local (params are per-activation).
    let f = a.functions.iter().find(|f| f.name == "f").unwrap();
    assert_eq!(f.branches.len(), 1);
}

#[test]
fn loop_with_two_variables_keeps_them_separate() {
    let (_, a) = analyze(
        "fn main() -> int { int i; int limit; limit = read_int(); \
         for (i = 0; i < 10; i = i + 1) { \
           if (limit > 100) { print_int(1); } \
         } return i; }",
    );
    let main = &a.functions[0];
    // The limit-test self-correlates (limit never written in the loop):
    // its taken edge must set itself taken, with no SET_UN on itself.
    let limit_idx = main
        .checked
        .iter()
        .enumerate()
        .filter(|(_, &c)| c)
        .map(|(i, _)| i as u32)
        .find(|&i| {
            main.actions(i, true)
                .iter()
                .any(|e| e.target == i && e.action == BrAction::SetTaken)
        });
    assert!(limit_idx.is_some(), "a self-stable branch must exist");
}

#[test]
fn empty_function_has_empty_tables() {
    let (_, a) = analyze("fn nop() { } fn main() -> int { nop(); return 0; }");
    let nop = a.functions.iter().find(|f| f.name == "nop").unwrap();
    assert!(nop.branches.is_empty());
    assert!(nop.bat.is_empty());
    assert_eq!(nop.hash.space(), 1);
    assert_eq!(nop.sizes.bat_bits, 16, "just the row-count header");
}
