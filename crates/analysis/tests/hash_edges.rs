//! Edge-case coverage for the perfect-hash search (§5.2).

use ipds_analysis::{find_perfect_hash, find_perfect_hash_counted, HashParams, PerfectHashError};

#[test]
fn zero_branches_gets_the_unit_space() {
    let (p, retries) = find_perfect_hash_counted(&[], 0x4000, 24).unwrap();
    assert_eq!(retries, 0, "nothing to reject");
    assert_eq!(p.space(), 1);
    assert_eq!(p.slot_bits(), 1, "a slot name still needs one bit");
    assert_eq!(p.pc_base, 0x4000);
}

#[test]
fn one_branch_hashes_first_try_anywhere() {
    // A single key can never collide: the very first candidate must win,
    // whatever the PC and base.
    for (base, pc) in [(0u64, 0u64), (0x1000, 0x1000), (0x1000, 0x1ffc), (8, 4096)] {
        let (p, retries) = find_perfect_hash_counted(&[pc], base, 24).unwrap();
        assert_eq!(retries, 0, "pc {pc:#x} base {base:#x}");
        assert!(p.slot(pc) < p.space());
        assert_eq!(p.log2_size, 1, "minimum space is 2 slots");
    }
}

#[test]
fn identity_degeneration_always_terminates() {
    // The guarantee the search leans on: once 2^log2_size exceeds the
    // largest instruction index, shifts (0, 0) degenerate to the identity
    // (x ^ x ^ x = x), which cannot collide on distinct keys. Adversarial
    // key sets must therefore always resolve within that bound.
    let base = 0u64;
    for stride in [16u64, 64, 256, 1024] {
        let pcs: Vec<u64> = (0..32).map(|i| base + 4 * i * stride).collect();
        let max_index = (pcs[pcs.len() - 1] - base) >> 2;
        let identity_log2 = 64 - max_index.leading_zeros();
        let p = find_perfect_hash(&pcs, base, identity_log2).unwrap();
        let mut seen = std::collections::HashSet::new();
        for &pc in &pcs {
            assert!(seen.insert(p.slot(pc)), "collision at stride {stride}");
        }
        assert!(p.log2_size <= identity_log2);
    }
}

#[test]
fn tiny_cap_yields_typed_error_with_the_facts() {
    // 32 distinct keys cannot fit in 2^4 = 16 slots: pigeonhole, not a
    // search shortfall. The error must carry both numbers.
    let pcs: Vec<u64> = (0..32).map(|i| 4 * i * 37).collect();
    let e = find_perfect_hash(&pcs, 0, 4).unwrap_err();
    assert_eq!(
        e,
        PerfectHashError {
            keys: 32,
            max_log2: 4
        }
    );
    assert!(e.to_string().contains("32 branches"));
    assert!(e.to_string().contains("2^4"));
}

#[test]
fn counted_and_plain_searches_agree() {
    let pcs: Vec<u64> = [3u64, 9, 11, 40, 77, 200].iter().map(|i| 4 * i).collect();
    let plain = find_perfect_hash(&pcs, 0, 20).unwrap();
    let (counted, _) = find_perfect_hash_counted(&pcs, 0, 20).unwrap();
    assert_eq!(plain, counted);
}

#[test]
fn slot_is_masked_into_space_even_for_foreign_pcs() {
    // The runtime hashes whatever PC traps; slots must stay in range even
    // for PCs the compiler never saw (they just won't be checked).
    let p = HashParams {
        shift1: 3,
        shift2: 7,
        log2_size: 5,
        pc_base: 0x1000,
    };
    for pc in [0u64, 0x0fff, 0x1000, 0xffff_ffff_ffff_fffc] {
        assert!(p.slot(pc) < p.space());
    }
}
