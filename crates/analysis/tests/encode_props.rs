//! Property tests for the perfect hash and the packed table encodings.

use std::collections::{BTreeMap, HashSet};

use ipds_analysis::encode::{decode_bat, encode_bat, table_sizes};
use ipds_analysis::hash::find_perfect_hash;
use ipds_analysis::{BatEntry, BitReader, BitWriter, BrAction, BranchInfo};
use ipds_ir::BlockId;
use proptest::prelude::*;

proptest! {
    /// Arbitrary sequences of (value, width) survive the bit-packing
    /// round trip in order.
    #[test]
    fn bit_stream_roundtrips(items in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..64)) {
        let mut w = BitWriter::new();
        for (v, width) in &items {
            w.push(*v, *width);
        }
        let expected_bits: usize = items.iter().map(|(_, w)| *w as usize).sum();
        prop_assert_eq!(w.bit_len(), expected_bits);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for (v, width) in &items {
            let mask = if *width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            prop_assert_eq!(r.read(*width), Some(v & mask));
        }
    }

    /// The perfect-hash search succeeds on any set of distinct 4-aligned
    /// PCs and produces no collisions.
    #[test]
    fn perfect_hash_always_found(
        idxs in proptest::collection::hash_set(0u64..4096, 0..48),
        base in 0u64..0x10000,
    ) {
        let base = base * 4;
        let pcs: Vec<u64> = idxs.iter().map(|i| base + 4 * i).collect();
        let params = find_perfect_hash(&pcs, base, 24).expect("search succeeds");
        let mut seen = HashSet::new();
        for &pc in &pcs {
            prop_assert!(seen.insert(params.slot(pc)), "collision at {pc:#x}");
        }
    }

    /// Arbitrary BATs round-trip through the packed wire format, and the
    /// size accounting covers the encoding.
    #[test]
    fn bat_roundtrips(
        n_branches in 1u32..24,
        rows in proptest::collection::vec(
            (0u32..24, proptest::bool::ANY,
             proptest::collection::vec((0u32..24, 0u8..4), 1..10)),
            0..16,
        ),
    ) {
        // Distinct, collision-free branch inventory.
        let base = 0x1000u64;
        let pcs: Vec<u64> = (0..n_branches).map(|i| base + 8 * i as u64).collect();
        let hash = find_perfect_hash(&pcs, base, 24).expect("hashable");
        let branches: Vec<BranchInfo> = pcs
            .iter()
            .enumerate()
            .map(|(i, &pc)| BranchInfo {
                block: BlockId(i as u32),
                pc,
                slot: hash.slot(pc),
            })
            .collect();

        // Clamp row contents into range; dedup (trigger, dir) keys and
        // entry targets the way the builder does.
        let mut bat: BTreeMap<(u32, bool), Vec<BatEntry>> = BTreeMap::new();
        for (t, d, entries) in rows {
            let trigger = t % n_branches;
            let mut list: Vec<BatEntry> = Vec::new();
            let mut seen = HashSet::new();
            for (target, act) in entries {
                let target = target % n_branches;
                if seen.insert(target) {
                    let action = match act {
                        0 => BrAction::SetTaken,
                        1 => BrAction::SetNotTaken,
                        _ => BrAction::SetUnknown,
                    };
                    list.push(BatEntry { target, action });
                }
            }
            if !list.is_empty() {
                bat.insert((trigger, d), list);
            }
        }

        let bytes = encode_bat(&bat, &branches, &hash);
        let back = decode_bat(&bytes, &branches, &hash).expect("decodes");
        prop_assert_eq!(&back, &bat);
        let sizes = table_sizes(&bat, &branches, &hash);
        prop_assert!(sizes.bat_bits <= bytes.len() * 8);
        prop_assert!(sizes.bat_bits + 8 > bytes.len() * 8, "no more than padding slack");
        prop_assert_eq!(sizes.bsv_bits, 2 * hash.space() as usize);
        prop_assert_eq!(sizes.bcv_bits, hash.space() as usize);
    }
}
