//! # ipds-absint — interval abstract interpretation over the IPDS IR
//!
//! The correlation compiler (`ipds-analysis`) proves branch correlations
//! through the paper's narrow Scenario-1/2/3 patterns, and `verify_tables`
//! checks only *structural* consistency of the emitted BSV/BCV/BAT. Neither
//! answers the semantic question: could an emitted `SET_T`/`SET_NT` action
//! ever fire on a feasible path where the target branch goes the other way?
//!
//! This crate supplies the independent oracle: a classic flow- and
//! branch-sensitive abstract interpretation of each function over the
//! interval domain of [`ipds_dataflow::Range`]:
//!
//! * **Per-program-point environments** map memory variables
//!   ([`MemVar`]) and SSA registers to value ranges; absent entries mean
//!   "unconstrained" (⊤), unreachable blocks have no environment (⊥).
//! * **Edge refinement**: each direction of a conditional branch meets the
//!   branch's implied constraints into the environment — through the
//!   condition register, the affine `Cmp` chain (`w = ±v + c`, Fig. 3.c),
//!   and the branch's memory anchors. An edge whose refined environment
//!   turns empty is statically *infeasible*.
//! * **Widening at loop heads** (plus a global fallback) guarantees the
//!   fixpoint terminates; two descending narrowing rounds claw back the
//!   precision classic widening gives up at loop exits.
//! * **Transfer functions** cover the arithmetic the paper's patterns need
//!   (`r = x ± c`, copies, constants) exactly and degrade to ⊤ everywhere
//!   else, so every result is a sound over-approximation of the wrapping
//!   concrete semantics in `BinOp::eval`.
//!
//! The analysis is deliberately intraprocedural and entered from ⊤ (no
//! assumptions about callers); calls and unclassified stores havoc exactly
//! the variables the caller's [`Summaries`] say they may write. Consumers
//! (`refine-correlations`, `lint-tables` in `ipds-analysis`) shard it
//! per-function over `ipds-parallel` and merge in `FuncId` order, so
//! everything here is deterministic by construction: `BTreeMap`
//! environments, index-ordered worklists, no hashing.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};

use ipds_dataflow::{AccessClass, AliasAnalysis, BranchAnchor, MemVar, Range, Summaries};
use ipds_ir::{
    Address, BinOp, BlockId, Function, Inst, Operand, Pred, Program, Reg, Terminator, VarKind,
};

/// Bounds with absolute value at most this are "safe": adding or
/// subtracting two safe bounds cannot leave the `i64` value space, so exact
/// interval arithmetic is sound despite the IR's wrapping semantics.
const SAFE_BOUND: i128 = (1 << 62) - 1;

/// After this many worklist updates (scaled by block count) every block is
/// treated as a widening point, bounding the fixpoint unconditionally even
/// if loop-head detection were ever incomplete.
const WIDEN_ALL_FACTOR: u64 = 16;

/// Descending (narrowing) rounds applied after the ascending fixpoint.
const NARROW_ROUNDS: usize = 2;

/// An abstract store at one program point: ranges for memory variables and
/// registers. Missing entries are unconstrained (`Range::Full`); the
/// environments stored by the analysis never contain empty or full ranges
/// (empty environments are represented as "no environment" — the program
/// point is unreachable).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AbsEnv {
    vars: BTreeMap<MemVar, Range>,
    regs: BTreeMap<Reg, Range>,
}

impl AbsEnv {
    /// The unconstrained environment (every variable and register is ⊤).
    pub fn top() -> AbsEnv {
        AbsEnv::default()
    }

    /// The range of memory variable `v` (⊤ if untracked).
    pub fn var(&self, v: MemVar) -> Range {
        self.vars.get(&v).copied().unwrap_or(Range::Full)
    }

    /// The range of register `r` (⊤ if untracked).
    pub fn reg(&self, r: Reg) -> Range {
        self.regs.get(&r).copied().unwrap_or(Range::Full)
    }

    /// Sets the range of memory variable `v` (⊤ drops the entry).
    pub fn set_var(&mut self, v: MemVar, r: Range) {
        if r == Range::Full {
            self.vars.remove(&v);
        } else {
            self.vars.insert(v, r);
        }
    }

    /// Sets the range of register `r` (⊤ drops the entry).
    pub fn set_reg(&mut self, r: Reg, range: Range) {
        if range == Range::Full {
            self.regs.remove(&r);
        } else {
            self.regs.insert(r, range);
        }
    }

    /// Meets `r` into variable `v`; returns `false` if the variable's range
    /// became empty (the program point is infeasible under the refinement).
    pub fn refine_var(&mut self, v: MemVar, r: Range) -> bool {
        let m = self.var(v).meet(r);
        if m.is_empty() {
            return false;
        }
        self.set_var(v, m);
        true
    }

    /// Meets `range` into register `r`; returns `false` on empty.
    pub fn refine_reg(&mut self, r: Reg, range: Range) -> bool {
        let m = self.reg(r).meet(range);
        if m.is_empty() {
            return false;
        }
        self.set_reg(r, m);
        true
    }

    /// Iterates the tracked (non-⊤) memory variables.
    pub fn tracked_vars(&self) -> impl Iterator<Item = (MemVar, Range)> + '_ {
        self.vars.iter().map(|(&v, &r)| (v, r))
    }

    /// Pointwise join (least upper bound): keys surviving in the result are
    /// exactly those constrained in *both* environments.
    fn join(a: &AbsEnv, b: &AbsEnv) -> AbsEnv {
        AbsEnv {
            vars: join_maps(&a.vars, &b.vars),
            regs: join_maps(&a.regs, &b.regs),
        }
    }

    /// Pointwise widening of `self` (previous iterate) by `next`.
    fn widen(&self, next: &AbsEnv) -> AbsEnv {
        AbsEnv {
            vars: widen_maps(&self.vars, &next.vars),
            regs: widen_maps(&self.regs, &next.regs),
        }
    }
}

fn join_maps<K: Ord + Copy>(a: &BTreeMap<K, Range>, b: &BTreeMap<K, Range>) -> BTreeMap<K, Range> {
    let mut out = BTreeMap::new();
    for (&k, &ra) in a {
        if let Some(&rb) = b.get(&k) {
            let j = ra.join(rb);
            if j != Range::Full {
                out.insert(k, j);
            }
        }
    }
    out
}

fn widen_maps<K: Ord + Copy>(
    prev: &BTreeMap<K, Range>,
    next: &BTreeMap<K, Range>,
) -> BTreeMap<K, Range> {
    let mut out = BTreeMap::new();
    for (&k, &rp) in prev {
        if let Some(&rn) = next.get(&k) {
            let w = rp.widen(rn);
            if w != Range::Full {
                out.insert(k, w);
            }
        }
    }
    out
}

/// Fixpoint effort counters, exposed so tests can assert the widening
/// strategy actually bounds the iteration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbsIntStats {
    /// Worklist block (re)computations during the ascending phase.
    pub block_updates: u64,
    /// Widening applications (loop heads plus the global fallback).
    pub widenings: u64,
    /// Loop heads detected by the DFS back-edge scan.
    pub loop_heads: u64,
}

/// The interval analysis result for one function: entry environments per
/// block and refined environments per conditional-branch edge.
#[derive(Debug, Clone)]
pub struct IntervalAnalysis {
    /// Per-block entry environment, indexed by `BlockId`; `None` means the
    /// block is statically unreachable.
    entry: Vec<Option<AbsEnv>>,
    /// Per-edge environment for every conditional branch `(block, dir)`;
    /// `None` means the direction is statically infeasible.
    edges: BTreeMap<(BlockId, bool), Option<AbsEnv>>,
    /// Fixpoint effort counters.
    pub stats: AbsIntStats,
}

impl IntervalAnalysis {
    /// Runs the interval abstract interpretation over `func`.
    ///
    /// The alias analysis and call summaries come from the same
    /// whole-program facts the correlation passes use, so the two analyses
    /// agree on which accesses are uniquely-aliased scalars and on what a
    /// call may clobber.
    pub fn analyze(
        program: &Program,
        func: &Function,
        alias: &AliasAnalysis,
        summaries: &Summaries,
    ) -> IntervalAnalysis {
        let anchors = ipds_dataflow::find_anchors(program, func, alias, summaries);
        Self::analyze_with_anchors(program, func, alias, summaries, &anchors)
    }

    /// Like [`IntervalAnalysis::analyze`], reusing branch anchors the
    /// caller already computed.
    pub fn analyze_with_anchors(
        program: &Program,
        func: &Function,
        alias: &AliasAnalysis,
        summaries: &Summaries,
        anchors: &BTreeMap<BlockId, Vec<BranchAnchor>>,
    ) -> IntervalAnalysis {
        let cx = Ctx {
            program,
            func,
            alias,
            summaries,
            anchors,
            defs: collect_defs(func),
        };
        let n = func.blocks.len();
        let loop_heads = find_loop_heads(func);
        let mut stats = AbsIntStats {
            loop_heads: loop_heads.len() as u64,
            ..AbsIntStats::default()
        };

        // Ascending phase: index-ordered worklist, join into successor
        // entries, widen at loop heads (and everywhere past the fallback
        // cap, so termination never depends on the head scan).
        let mut entry: Vec<Option<AbsEnv>> = vec![None; n];
        entry[func.entry.index()] = Some(AbsEnv::top());
        let mut edges: BTreeMap<(BlockId, bool), Option<AbsEnv>> = BTreeMap::new();
        let mut work: BTreeSet<u32> = BTreeSet::new();
        work.insert(func.entry.0);
        let widen_all_after = WIDEN_ALL_FACTOR * (n as u64 + 1);
        while let Some(&b) = work.iter().next() {
            work.remove(&b);
            stats.block_updates += 1;
            let bid = BlockId(b);
            let Some(env0) = entry[bid.index()].clone() else {
                continue;
            };
            let out = cx.transfer_block(bid, env0);
            let widen_all = stats.block_updates > widen_all_after;
            for (succ, env) in cx.out_edges(bid, &out, Some(&mut edges)) {
                let widen_here = widen_all || loop_heads.contains(&succ.0);
                let slot = &mut entry[succ.index()];
                let next = match slot.as_ref() {
                    None => env,
                    Some(old) => {
                        let joined = AbsEnv::join(old, &env);
                        if widen_here {
                            stats.widenings += 1;
                            old.widen(&joined)
                        } else {
                            joined
                        }
                    }
                };
                if slot.as_ref() != Some(&next) {
                    *slot = Some(next);
                    work.insert(succ.0);
                }
            }
        }

        // Descending (narrowing) rounds: one simultaneous application of
        // the transfer system per round, starting from the post-widening
        // state. Each application stays a sound over-approximation of the
        // concrete reachable states, and a fixed round count trivially
        // terminates.
        for _ in 0..NARROW_ROUNDS {
            let mut next_entry: Vec<Option<AbsEnv>> = vec![None; n];
            next_entry[func.entry.index()] = Some(AbsEnv::top());
            for b in 0..n as u32 {
                let bid = BlockId(b);
                let Some(env0) = entry[bid.index()].clone() else {
                    continue;
                };
                let out = cx.transfer_block(bid, env0);
                for (succ, env) in cx.out_edges(bid, &out, None) {
                    let slot = &mut next_entry[succ.index()];
                    *slot = Some(match slot.as_ref() {
                        None => env,
                        Some(old) => AbsEnv::join(old, &env),
                    });
                }
            }
            entry = next_entry;
        }

        // Final edge refresh from the narrowed entries, so edge
        // environments and entry environments describe the same state.
        edges.clear();
        for b in 0..n as u32 {
            let bid = BlockId(b);
            let Some(env0) = entry[bid.index()].clone() else {
                if func.block(bid).term.is_branch() {
                    edges.insert((bid, true), None);
                    edges.insert((bid, false), None);
                }
                continue;
            };
            let out = cx.transfer_block(bid, env0);
            let _ = cx.out_edges(bid, &out, Some(&mut edges));
        }

        IntervalAnalysis {
            entry,
            edges,
            stats,
        }
    }

    /// True if the block is statically reachable.
    pub fn reachable(&self, b: BlockId) -> bool {
        self.entry.get(b.index()).is_some_and(|e| e.is_some())
    }

    /// The entry environment of a reachable block.
    pub fn entry_env(&self, b: BlockId) -> Option<&AbsEnv> {
        self.entry.get(b.index()).and_then(|e| e.as_ref())
    }

    /// The refined environment on conditional-branch edge `(b, dir)`.
    /// `None` means the edge is statically infeasible (or `b` is not a
    /// conditional branch).
    pub fn edge_env(&self, b: BlockId, dir: bool) -> Option<&AbsEnv> {
        self.edges.get(&(b, dir)).and_then(|e| e.as_ref())
    }

    /// True if the conditional-branch edge `(b, dir)` may be taken. Edges
    /// the analysis knows nothing about count as feasible.
    pub fn edge_feasible(&self, b: BlockId, dir: bool) -> bool {
        match self.edges.get(&(b, dir)) {
            Some(env) => env.is_some(),
            None => true,
        }
    }

    /// The range of memory variable `v` on conditional-branch edge
    /// `(b, dir)`: ⊥ on an infeasible edge, ⊤ when untracked.
    pub fn var_on_edge(&self, b: BlockId, dir: bool, v: MemVar) -> Range {
        match self.edges.get(&(b, dir)) {
            Some(Some(env)) => env.var(v),
            Some(None) => Range::Empty,
            None => Range::Full,
        }
    }
}

/// Analyzes every function of `program` serially, in `FuncId` order.
/// Callers that want parallelism shard [`IntervalAnalysis::analyze`] over
/// `ipds-parallel` themselves and merge in the same order.
pub fn analyze_program(
    program: &Program,
    alias: &AliasAnalysis,
    summaries: &Summaries,
) -> Vec<IntervalAnalysis> {
    program
        .functions
        .iter()
        .map(|f| IntervalAnalysis::analyze(program, f, alias, summaries))
        .collect()
}

/// Maps each register to its unique defining instruction's location.
fn collect_defs(func: &Function) -> BTreeMap<Reg, (BlockId, usize)> {
    let mut defs = BTreeMap::new();
    for (bid, block) in func.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            if let Some(d) = inst.def() {
                defs.insert(d, (bid, i));
            }
        }
    }
    defs
}

/// DFS back-edge scan: a successor edge landing on a block that is still on
/// the DFS path is a back edge, and its target a loop head. Every CFG cycle
/// contains at least one such edge, so widening at these blocks bounds the
/// ascending chain through any loop nest.
fn find_loop_heads(func: &Function) -> BTreeSet<u32> {
    const WHITE: u8 = 0;
    const ON_PATH: u8 = 1;
    const DONE: u8 = 2;
    let mut color = vec![WHITE; func.blocks.len()];
    let mut heads = BTreeSet::new();
    let mut stack: Vec<(BlockId, Vec<BlockId>, usize)> = Vec::new();
    color[func.entry.index()] = ON_PATH;
    stack.push((func.entry, func.block(func.entry).term.successors(), 0));
    while let Some((b, succs, i)) = stack.last_mut() {
        if *i >= succs.len() {
            color[b.index()] = DONE;
            stack.pop();
            continue;
        }
        let s = succs[*i];
        *i += 1;
        match color[s.index()] {
            ON_PATH => {
                heads.insert(s.0);
            }
            WHITE => {
                color[s.index()] = ON_PATH;
                stack.push((s, func.block(s).term.successors(), 0));
            }
            _ => {}
        }
    }
    heads
}

/// Per-function analysis context shared by the transfer functions.
struct Ctx<'a> {
    program: &'a Program,
    func: &'a Function,
    alias: &'a AliasAnalysis,
    summaries: &'a Summaries,
    anchors: &'a BTreeMap<BlockId, Vec<BranchAnchor>>,
    defs: BTreeMap<Reg, (BlockId, usize)>,
}

impl<'a> Ctx<'a> {
    /// Runs the block's straight-line instructions over `env`.
    fn transfer_block(&self, bid: BlockId, mut env: AbsEnv) -> AbsEnv {
        for inst in &self.func.block(bid).insts {
            self.transfer_inst(&mut env, inst);
        }
        env
    }

    /// Outgoing `(successor, environment)` contributions of `bid` given its
    /// post-instructions environment, refining conditional-branch edges.
    /// When `edges` is given, the refined edge environments (including
    /// infeasible `None`s) are recorded there.
    fn out_edges(
        &self,
        bid: BlockId,
        out: &AbsEnv,
        mut edges: Option<&mut BTreeMap<(BlockId, bool), Option<AbsEnv>>>,
    ) -> Vec<(BlockId, AbsEnv)> {
        match &self.func.block(bid).term {
            Terminator::Jump(t) => vec![(*t, out.clone())],
            Terminator::Return(_) => Vec::new(),
            Terminator::Branch {
                cond,
                taken,
                not_taken,
            } => {
                let mut contributions = Vec::new();
                for (dir, succ) in [(true, *taken), (false, *not_taken)] {
                    let refined = self.refine_edge(out, bid, *cond, dir);
                    if let Some(map) = edges.as_deref_mut() {
                        map.insert((bid, dir), refined.clone());
                    }
                    if let Some(env) = refined {
                        contributions.push((succ, env));
                    }
                }
                contributions
            }
        }
    }

    /// Abstract transfer of one instruction.
    fn transfer_inst(&self, env: &mut AbsEnv, inst: &Inst) {
        match inst {
            Inst::Const { dst, value } => env.set_reg(*dst, Range::exact(*value)),
            Inst::BinOp { dst, op, lhs, rhs } => {
                let r = binop_range(
                    *op,
                    self.operand_range(env, lhs),
                    self.operand_range(env, rhs),
                );
                env.set_reg(*dst, r);
            }
            Inst::Cmp {
                dst,
                pred,
                lhs,
                rhs,
            } => {
                env.set_reg(
                    *dst,
                    cmp_range(
                        *pred,
                        self.operand_range(env, lhs),
                        self.operand_range(env, rhs),
                    ),
                );
            }
            Inst::Load { dst, addr } => {
                let r = match self.alias.classify(self.program, self.func.id, addr) {
                    AccessClass::Unique(v) => env.var(v),
                    _ => match self.promoted_cell(addr) {
                        Some(v) => env.var(v),
                        None => Range::Full,
                    },
                };
                env.set_reg(*dst, r);
            }
            Inst::Store { addr, src } => {
                let value = self.operand_range(env, src);
                self.havoc(env, inst);
                if let AccessClass::Unique(v) =
                    self.alias.classify(self.program, self.func.id, addr)
                {
                    env.set_var(v, value);
                } else if let Some(v) = self.promoted_cell(addr) {
                    env.set_var(v, value);
                }
            }
            Inst::AddrOf { dst, .. } => env.set_reg(*dst, Range::Full),
            Inst::Call { dst, .. } => {
                self.havoc(env, inst);
                if let Some(d) = dst {
                    env.set_reg(*d, Range::Full);
                }
            }
            // Phis only exist inside the SSA construction window; the
            // abstract interpreter runs after deconstruction. Stay total
            // and conservative: the join of unknown paths is unknown.
            Inst::Phi { dst, .. } => env.set_reg(*dst, Range::Full),
        }
    }

    /// Tracks a direct access to a promoted scalar as an exact cell.
    ///
    /// `mem2reg` only promotes scalars whose address is never taken, so a
    /// promoted variable's residual memory traffic (phi-spill stores and
    /// reloads after SSA deconstruction) all goes through direct
    /// [`Address::Var`] accesses — there is no aliasing path to it. The
    /// alias layer still refuses `Unique` for promoted variables (their
    /// spill slots are rewritten freely by later passes, so correlation
    /// anchors must not form on them), which without this special case
    /// would drop their ranges to ⊤ and make [`IntervalAnalysis::var_on_edge`]
    /// — and hence feasibility pruning — strictly less precise under
    /// promotion. Indirect writes stay sound: any store that may write the
    /// variable havocs it before this refinement applies.
    fn promoted_cell(&self, addr: &Address) -> Option<MemVar> {
        if let Address::Var(v) = addr {
            let mv = MemVar::resolve(self.func.id, *v);
            if mv.size(self.program) == 1 && mv.kind(self.program) == VarKind::Promoted {
                return Some(mv);
            }
        }
        None
    }

    /// Drops every tracked variable the instruction may write (per the
    /// whole-program call summaries and alias classes).
    fn havoc(&self, env: &mut AbsEnv, inst: &Inst) {
        let eff = self
            .summaries
            .may_write(self.program, self.alias, self.func.id, inst);
        if eff.is_nothing() {
            return;
        }
        env.vars.retain(|v, _| !eff.may_write(*v));
    }

    fn operand_range(&self, env: &AbsEnv, op: &Operand) -> Range {
        match op {
            Operand::Reg(r) => env.reg(*r),
            Operand::Imm(k) => Range::exact(*k),
        }
    }

    /// Refines `env` with everything the branch direction `(bid, dir)`
    /// implies: the condition register, the registers along its affine
    /// `Cmp` chain, and the branch's memory anchors. Returns `None` when a
    /// constraint turns empty — the edge is statically infeasible.
    fn refine_edge(&self, env: &AbsEnv, bid: BlockId, cond: Reg, dir: bool) -> Option<AbsEnv> {
        let mut e = env.clone();
        // The branch tests `cond != 0`.
        let cond_range = if dir { Range::Ne(0) } else { Range::exact(0) };
        if !e.refine_reg(cond, cond_range) {
            return None;
        }
        if !self.refine_cmp_chain(&mut e, cond, dir) {
            return None;
        }
        for a in self.anchors.get(&bid).into_iter().flatten() {
            if !e.refine_var(a.var, a.implied_range(dir)) {
                return None;
            }
        }
        Some(e)
    }

    /// Walks the condition's use–def chain through `Cmp` against a constant
    /// and `±constant` arithmetic (the same shapes the anchor finder
    /// walks), meeting the implied range into every register on the chain.
    /// Registers are single-assignment, so the relation between a register
    /// and the condition always holds — no store-freedom side conditions.
    /// Returns `false` if any register's range became empty.
    fn refine_cmp_chain(&self, env: &mut AbsEnv, cond: Reg, dir: bool) -> bool {
        let Some(&cmp_loc) = self.defs.get(&cond) else {
            return true;
        };
        let (b, i) = cmp_loc;
        let Inst::Cmp { pred, lhs, rhs, .. } = &self.func.block(b).insts[i] else {
            return true;
        };
        let (mut cur, mut constraint) = match (lhs, rhs) {
            (Operand::Reg(r), Operand::Imm(c)) => (*r, Range::from_pred(*pred, *c, dir)),
            (Operand::Imm(c), Operand::Reg(r)) => (*r, Range::from_pred(pred.swap(), *c, dir)),
            _ => return true,
        };
        // constraint always describes the current chain register `cur`.
        for _ in 0..64 {
            if !env.refine_reg(cur, constraint) {
                return false;
            }
            let Some(&(b, i)) = self.defs.get(&cur) else {
                return true;
            };
            let Inst::BinOp { op, lhs, rhs, .. } = &self.func.block(b).insts[i] else {
                return true;
            };
            match (op, lhs, rhs) {
                // cur = r + k  ⇒  r ∈ constraint - k
                (BinOp::Add, Operand::Reg(r), Operand::Imm(k))
                | (BinOp::Add, Operand::Imm(k), Operand::Reg(r)) => {
                    constraint = constraint.shift(k.wrapping_neg());
                    cur = *r;
                }
                // cur = r - k  ⇒  r ∈ constraint + k
                (BinOp::Sub, Operand::Reg(r), Operand::Imm(k)) => {
                    constraint = constraint.shift(*k);
                    cur = *r;
                }
                // cur = k - r  ⇒  r ∈ k - constraint
                (BinOp::Sub, Operand::Imm(k), Operand::Reg(r)) => {
                    constraint = constraint.negate().shift(*k);
                    cur = *r;
                }
                _ => return true,
            }
        }
        true
    }
}

/// Returns the interval bounds of `r` when both are inside the safe window
/// where `i64` addition/subtraction of members cannot wrap.
fn safe_bounds(r: Range) -> Option<(i128, i128)> {
    match r {
        Range::Interval { lo, hi } if lo >= -SAFE_BOUND && hi <= SAFE_BOUND && lo <= hi => {
            Some((lo, hi))
        }
        _ => None,
    }
}

/// Sound, monotone abstract addition under wrapping `i64` semantics.
fn add_range(a: Range, b: Range) -> Range {
    if a.is_empty() || b.is_empty() {
        return Range::Empty;
    }
    if let Some(k) = b.as_exact() {
        return a.shift(k);
    }
    if let Some(k) = a.as_exact() {
        return b.shift(k);
    }
    match (safe_bounds(a), safe_bounds(b)) {
        (Some((l1, h1)), Some((l2, h2))) => Range::Interval {
            lo: l1 + l2,
            hi: h1 + h2,
        },
        _ => Range::Full,
    }
}

/// Sound, monotone abstract subtraction under wrapping `i64` semantics.
fn sub_range(a: Range, b: Range) -> Range {
    if a.is_empty() || b.is_empty() {
        return Range::Empty;
    }
    if let Some(k) = b.as_exact() {
        return a.shift(k.wrapping_neg());
    }
    if let Some(k) = a.as_exact() {
        return b.negate().shift(k);
    }
    match (safe_bounds(a), safe_bounds(b)) {
        (Some((l1, h1)), Some((l2, h2))) => Range::Interval {
            lo: l1 - h2,
            hi: h1 - l2,
        },
        _ => Range::Full,
    }
}

/// The abstract transfer of `dst = op(lhs, rhs)` at the range level.
///
/// Exact for the affine forms the paper's Fig. 3.c needs (`x ± c`, copies
/// via `+ 0`, negation) and for fully-constant operands; ⊤ otherwise. The
/// function is *monotone* in both arguments and *sound* for the wrapping
/// concrete semantics of [`BinOp::eval`] — both properties are hammered by
/// the `props` suite.
pub fn binop_range(op: BinOp, lhs: Range, rhs: Range) -> Range {
    if lhs.is_empty() || rhs.is_empty() {
        return Range::Empty;
    }
    match op {
        BinOp::Add => add_range(lhs, rhs),
        BinOp::Sub => sub_range(lhs, rhs),
        BinOp::Mul => match (lhs.as_exact(), rhs.as_exact()) {
            (Some(0), _) | (_, Some(0)) => Range::exact(0),
            (Some(1), _) => rhs,
            (_, Some(1)) => lhs,
            (Some(-1), _) => rhs.negate(),
            (_, Some(-1)) => lhs.negate(),
            (Some(a), Some(b)) => Range::exact(a.wrapping_mul(b)),
            _ => Range::Full,
        },
        _ => match (lhs.as_exact(), rhs.as_exact()) {
            (Some(a), Some(b)) => Range::exact(op.eval(a, b)),
            _ => Range::Full,
        },
    }
}

/// The abstract transfer of `dst = (lhs pred rhs) ? 1 : 0`: the result is
/// the exact boolean when one side is constant and the other side's range
/// forces the comparison, and `[0, 1]` otherwise.
pub fn cmp_range(pred: Pred, lhs: Range, rhs: Range) -> Range {
    if lhs.is_empty() || rhs.is_empty() {
        return Range::Empty;
    }
    let forced = if let Some(c) = rhs.as_exact() {
        lhs.implies_direction(pred, c)
    } else if let Some(c) = lhs.as_exact() {
        rhs.implies_direction(pred.swap(), c)
    } else {
        None
    };
    match forced {
        Some(true) => Range::exact(1),
        Some(false) => Range::exact(0),
        None => Range::Interval { lo: 0, hi: 1 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipds_ir::VarId;

    fn setup(src: &str) -> (Program, AliasAnalysis, Summaries) {
        let p = ipds_ir::parse(src).unwrap();
        let a = AliasAnalysis::analyze(&p);
        let s = Summaries::compute(&p, &a);
        (p, a, s)
    }

    fn analyze_main(src: &str) -> (Program, IntervalAnalysis) {
        let (p, a, s) = setup(src);
        let f = p.main().unwrap();
        let ia = IntervalAnalysis::analyze(&p, f, &a, &s);
        (p, ia)
    }

    fn local(p: &Program, fname: &str, vname: &str) -> MemVar {
        let f = p.function_by_name(fname).unwrap();
        let idx = f.vars.iter().position(|v| v.name == vname).unwrap();
        MemVar::local(f.id, VarId::local(idx as u32))
    }

    fn branch_blocks(p: &Program) -> Vec<BlockId> {
        let f = p.main().unwrap();
        f.iter_blocks()
            .filter(|(_, b)| b.term.is_branch())
            .map(|(id, _)| id)
            .collect()
    }

    #[test]
    fn constant_store_forces_direction() {
        // x = 3 makes the not-taken direction of `x < 5` infeasible.
        let src = "fn main() -> int { int x; x = 3; if (x < 5) { return 1; } return 0; }";
        let (p, ia) = analyze_main(src);
        let branches = branch_blocks(&p);
        assert_eq!(branches.len(), 1);
        let b = branches[0];
        assert!(ia.edge_feasible(b, true));
        assert!(!ia.edge_feasible(b, false), "x = 3 cannot fail x < 5");
        let x = local(&p, "main", "x");
        assert_eq!(ia.var_on_edge(b, true, x), Range::exact(3));
        assert_eq!(ia.var_on_edge(b, false, x), Range::Empty);
    }

    #[test]
    fn edge_refinement_propagates_to_nested_branch() {
        // Outer taken edge pins x ≤ 4; the inner x > 20 can then never be
        // taken.
        let src = "fn main() -> int { int x; x = read_int(); \
                   if (x < 5) { if (x > 20) { return 2; } return 1; } return 0; }";
        let (p, ia) = analyze_main(src);
        let f = p.main().unwrap();
        let x = local(&p, "main", "x");
        let mut saw_inner = false;
        for (bid, block) in f.iter_blocks() {
            if !block.term.is_branch() {
                continue;
            }
            let on_taken = ia.var_on_edge(bid, true, x);
            if on_taken == Range::at_most(4) {
                // Outer branch: both directions feasible.
                assert!(ia.edge_feasible(bid, true) && ia.edge_feasible(bid, false));
            } else if ia
                .entry_env(bid)
                .is_some_and(|e| e.var(x) == Range::at_most(4))
            {
                // Inner branch: entry already knows x ≤ 4, so taken (x > 20)
                // is infeasible.
                saw_inner = true;
                assert!(!ia.edge_feasible(bid, true), "x ≤ 4 cannot satisfy x > 20");
                assert!(ia.edge_feasible(bid, false));
            }
        }
        assert!(saw_inner, "inner branch must be found");
    }

    #[test]
    fn loop_widening_terminates_and_narrowing_bounds_exit() {
        let src = "fn main() -> int { int i; i = 0; \
                   while (i < 10) { i = i + 1; } return i; }";
        let (p, ia) = analyze_main(src);
        let f = p.main().unwrap();
        let i = local(&p, "main", "i");
        assert!(ia.stats.loop_heads >= 1, "the while loop has a head");
        assert!(
            ia.stats.block_updates <= 64 * (f.blocks.len() as u64 + 1),
            "widening must bound the fixpoint ({} updates)",
            ia.stats.block_updates
        );
        // The loop-exit edge knows i ≥ 10 (the not-taken direction of
        // i < 10); narrowing additionally caps it at exactly 10's meet with
        // the widened head state.
        let branches = branch_blocks(&p);
        let head = branches[0];
        let exit_range = ia.var_on_edge(head, false, i);
        assert!(
            exit_range.subsumed_by(Range::at_least(10)),
            "loop exit must know i ≥ 10, got {exit_range}"
        );
        // Inside the loop i stays below 10.
        let body_range = ia.var_on_edge(head, true, i);
        assert!(
            body_range.subsumed_by(Range::at_most(9)),
            "loop body must know i ≤ 9, got {body_range}"
        );
    }

    #[test]
    fn call_havocs_written_variable() {
        let src = "fn bump(int *p) { *p = 99; } \
                   fn main() -> int { int x; int y; x = 3; y = 4; bump(&x); \
                   if (x < 5) { return 1; } return 0; }";
        let (p, ia) = analyze_main(src);
        let x = local(&p, "main", "x");
        let y = local(&p, "main", "y");
        let branches = branch_blocks(&p);
        let b = branches[0];
        // x was clobbered by the call; y survives.
        assert!(ia.edge_feasible(b, true) && ia.edge_feasible(b, false));
        assert_eq!(ia.var_on_edge(b, true, y), Range::exact(4));
        assert_eq!(ia.var_on_edge(b, true, x), Range::at_most(4));
    }

    #[test]
    fn affine_chain_refines_edge() {
        // taken direction of (x - 1 < 10) pins x ≤ 11 via the chain.
        let src = "fn main() -> int { int x; x = read_int(); \
                   if (x - 1 < 10) { return 1; } return 0; }";
        let (p, ia) = analyze_main(src);
        let x = local(&p, "main", "x");
        let b = branch_blocks(&p)[0];
        assert_eq!(ia.var_on_edge(b, true, x), Range::at_most(10));
        assert_eq!(ia.var_on_edge(b, false, x), Range::at_least(11));
    }

    #[test]
    fn unreachable_block_has_no_env() {
        let src = "fn main() -> int { int x; x = 1; \
                   if (x == 1) { return 1; } return 0; }";
        let (p, ia) = analyze_main(src);
        let f = p.main().unwrap();
        let b = branch_blocks(&p)[0];
        assert!(!ia.edge_feasible(b, false));
        // The not-taken successor is unreachable.
        if let Terminator::Branch { not_taken, .. } = &f.block(b).term {
            assert!(!ia.reachable(*not_taken));
        } else {
            panic!("expected branch");
        }
    }

    #[test]
    fn promoted_vars_stay_tracked_through_phi_spills() {
        // Under full register promotion `m`'s surviving memory traffic is
        // phi spills, which the alias layer refuses to class as Unique. The
        // interval domain must still track the spill slot, or the merged
        // `m ∈ [1, 3]` is lost and the dead `m > 5` edge stops being
        // provable. (The two arms must disagree, or SSA folds the phi away
        // and no spill survives to exercise the tracking.)
        let src = "fn main() -> int { int m; int t; t = read_int(); m = 1; \
                   if (t < 5) { m = 3; } \
                   if (m > 5) { print_int(1); } return 0; }";
        let mut p = ipds_ir::parse(src).unwrap();
        let form = ipds_ir::build_ssa(&mut p, 100);
        ipds_ir::mark_promoted(&mut p, &form);
        ipds_ir::deconstruct_ssa(&mut p, &form);
        let a = AliasAnalysis::analyze(&p);
        let s = Summaries::compute(&p, &a);
        let f = p.main().unwrap();
        let ia = IntervalAnalysis::analyze(&p, f, &a, &s);
        let m = local(&p, "main", "m");
        assert_eq!(m.kind(&p), VarKind::Promoted, "promotion must cover m");
        // The `m > 5` guard is the last branch in block order; `m` is 3 on
        // every path into it.
        let guard = *branch_blocks(&p).last().unwrap();
        assert!(
            !ia.edge_feasible(guard, true),
            "m ∈ [1, 3] on every path; the taken edge of m > 5 must be infeasible"
        );
        assert_eq!(
            ia.var_on_edge(guard, false, m),
            Range::Interval { lo: 1, hi: 3 }
        );
    }

    #[test]
    fn binop_range_constant_folds() {
        assert_eq!(
            binop_range(BinOp::Add, Range::exact(2), Range::exact(3)),
            Range::exact(5)
        );
        assert_eq!(
            binop_range(BinOp::Sub, Range::at_most(4), Range::exact(1)),
            Range::at_most(3)
        );
        assert_eq!(
            binop_range(
                BinOp::Add,
                Range::Interval { lo: 1, hi: 2 },
                Range::Interval { lo: 10, hi: 20 }
            ),
            Range::Interval { lo: 11, hi: 22 }
        );
        assert_eq!(
            binop_range(BinOp::Mul, Range::exact(6), Range::exact(7)),
            Range::exact(42)
        );
        assert_eq!(
            binop_range(BinOp::Mul, Range::at_most(3), Range::at_most(3)),
            Range::Full
        );
        assert_eq!(
            binop_range(BinOp::Div, Range::exact(7), Range::exact(2)),
            Range::exact(3)
        );
    }

    #[test]
    fn cmp_range_decides_when_forced() {
        assert_eq!(
            cmp_range(Pred::Lt, Range::at_most(4), Range::exact(5)),
            Range::exact(1)
        );
        assert_eq!(
            cmp_range(Pred::Lt, Range::at_least(5), Range::exact(5)),
            Range::exact(0)
        );
        assert_eq!(
            cmp_range(Pred::Lt, Range::Full, Range::exact(5)),
            Range::Interval { lo: 0, hi: 1 }
        );
        // Swapped constant side.
        assert_eq!(
            cmp_range(Pred::Gt, Range::exact(5), Range::at_least(6)),
            Range::exact(0)
        );
    }
}
