//! Property tests for the interval abstract interpreter.
//!
//! Two families of laws keep the lint/refine oracles honest:
//!
//! * the range-level transfer functions ([`binop_range`], [`cmp_range`])
//!   must be **sound** for the wrapping concrete semantics of
//!   `BinOp::eval` / `Pred::eval` and **monotone** in both arguments, and
//! * the whole-function fixpoint must **terminate with bounded effort** on
//!   randomly generated loop CFGs — including loops whose concrete
//!   execution never terminates (zero or negative steps), which is exactly
//!   where widening has to earn its keep.

use ipds_absint::{binop_range, cmp_range, IntervalAnalysis};
use ipds_dataflow::{AliasAnalysis, Range, Summaries};
use ipds_ir::{BinOp, Pred};
use proptest::prelude::*;

fn any_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
    ]
}

fn any_pred() -> impl Strategy<Value = Pred> {
    prop_oneof![
        Just(Pred::Eq),
        Just(Pred::Ne),
        Just(Pred::Lt),
        Just(Pred::Le),
        Just(Pred::Gt),
        Just(Pred::Ge),
    ]
}

fn any_range() -> impl Strategy<Value = Range> {
    prop_oneof![
        Just(Range::Full),
        Just(Range::Empty),
        (-100i64..100).prop_map(Range::Ne),
        (-100i64..100).prop_map(Range::exact),
        (-100i64..100).prop_map(Range::at_most),
        (-100i64..100).prop_map(Range::at_least),
        (-100i64..100, 0i64..80).prop_map(|(lo, w)| Range::Interval {
            lo: lo as i128,
            hi: (lo + w) as i128
        }),
    ]
}

/// Operand values biased toward the representable ends, where the
/// interval arithmetic has to saturate instead of silently inverting.
fn extreme() -> impl Strategy<Value = i64> {
    prop_oneof![
        Just(i64::MIN),
        Just(i64::MIN + 1),
        Just(-1i64),
        Just(0i64),
        Just(1i64),
        Just(i64::MAX - 1),
        Just(i64::MAX),
        any::<i64>(),
    ]
}

/// A range guaranteed to contain `v`, of varying shape.
fn range_containing(v: i64, kind: i64, a: i64, b: i64) -> Range {
    match kind.rem_euclid(4) {
        0 => Range::Full,
        1 => Range::exact(v),
        2 => Range::Interval {
            lo: (v - a) as i128,
            hi: (v + b) as i128,
        },
        _ => Range::Ne(v.wrapping_add(1 + a)),
    }
}

proptest! {
    /// Soundness: concrete results of members stay inside the abstract
    /// result.
    #[test]
    fn binop_range_is_sound(
        op in any_binop(),
        va in -50i64..50,
        vb in -50i64..50,
        ka in 0i64..4, aa in 0i64..40, ba in 0i64..40,
        kb in 0i64..4, ab in 0i64..40, bb in 0i64..40,
    ) {
        let ra = range_containing(va, ka, aa, ba);
        let rb = range_containing(vb, kb, ab, bb);
        prop_assert!(ra.contains(va) && rb.contains(vb));
        let out = binop_range(op, ra, rb);
        let concrete = op.eval(va, vb);
        prop_assert!(
            out.contains(concrete),
            "{op:?}: {va} ∈ {ra}, {vb} ∈ {rb}, but {concrete} ∉ {out}"
        );
    }

    /// Monotonicity: widening either input can only widen the output.
    #[test]
    fn binop_range_is_monotone(
        op in any_binop(),
        a1 in any_range(),
        da in any_range(),
        b1 in any_range(),
        db in any_range(),
        v in -200i64..200,
    ) {
        let a2 = a1.join(da);
        let b2 = b1.join(db);
        let narrow = binop_range(op, a1, b1);
        let wide = binop_range(op, a2, b2);
        if narrow.contains(v) {
            prop_assert!(
                wide.contains(v),
                "{op:?}: f({a1}, {b1}) = {narrow} ∋ {v} escapes f({a2}, {b2}) = {wide}"
            );
        }
    }

    /// Soundness of the comparison transfer: the concrete boolean is in the
    /// abstract result.
    #[test]
    fn cmp_range_is_sound(
        pred in any_pred(),
        va in -50i64..50,
        vb in -50i64..50,
        ka in 0i64..4, aa in 0i64..40, ba in 0i64..40,
        kb in 0i64..4, ab in 0i64..40, bb in 0i64..40,
    ) {
        let ra = range_containing(va, ka, aa, ba);
        let rb = range_containing(vb, kb, ab, bb);
        let out = cmp_range(pred, ra, rb);
        let concrete = i64::from(pred.eval(va, vb));
        prop_assert!(
            out.contains(concrete),
            "{pred:?}: {va} ∈ {ra}, {vb} ∈ {rb}, but {concrete} ∉ {out}"
        );
    }

    /// Monotonicity of the comparison transfer.
    #[test]
    fn cmp_range_is_monotone(
        pred in any_pred(),
        a1 in any_range(),
        da in any_range(),
        b1 in any_range(),
        db in any_range(),
        v in -2i64..4,
    ) {
        let a2 = a1.join(da);
        let b2 = b1.join(db);
        let narrow = cmp_range(pred, a1, b1);
        let wide = cmp_range(pred, a2, b2);
        if narrow.contains(v) {
            prop_assert!(wide.contains(v), "{pred:?}: {narrow} ∋ {v} escapes {wide}");
        }
    }

    /// Saturation soundness: exact operands at the representable ends must
    /// still produce ranges containing the wrapping concrete result. This
    /// is where the shift/negate helpers used to invert an interval (e.g.
    /// `−1 × MIN` or `MAX + 1`) and silently claim the result impossible.
    #[test]
    fn binop_range_is_sound_at_extreme_operands(
        op in any_binop(),
        a in extreme(),
        b in extreme(),
    ) {
        let out = binop_range(op, Range::exact(a), Range::exact(b));
        let concrete = op.eval(a, b);
        prop_assert!(
            out.contains(concrete),
            "{op:?}: exact({a}) ⋄ exact({b}) = {out} misses {concrete}"
        );
    }

    /// Saturation soundness with one extreme exact operand against a
    /// small range of arbitrary shape (the shift-by-constant fast paths).
    #[test]
    fn binop_range_saturates_against_small_ranges(
        op in any_binop(),
        va in -50i64..50,
        ka in 0i64..4, aa in 0i64..40, ba in 0i64..40,
        c in extreme(),
        flip in proptest::bool::ANY,
    ) {
        let ra = range_containing(va, ka, aa, ba);
        prop_assert!(ra.contains(va));
        let (l, r, cl, cr) = if flip {
            (Range::exact(c), ra, c, va)
        } else {
            (ra, Range::exact(c), va, c)
        };
        let out = binop_range(op, l, r);
        let concrete = op.eval(cl, cr);
        prop_assert!(
            out.contains(concrete),
            "{op:?}: {cl} ∈ {l}, {cr} ∈ {r}, but {concrete} ∉ {out}"
        );
    }

    /// The comparison transfer stays sound when either side sits at the
    /// representable ends (`from_pred` must collapse to ∅, not wrap).
    #[test]
    fn cmp_range_is_sound_at_extreme_operands(
        pred in any_pred(),
        a in extreme(),
        b in extreme(),
        va in -50i64..50,
        ka in 0i64..4, aa in 0i64..40, ba in 0i64..40,
        mix in proptest::bool::ANY,
    ) {
        let (l, r, cl, cr) = if mix {
            let ra = range_containing(va, ka, aa, ba);
            (ra, Range::exact(b), va, b)
        } else {
            (Range::exact(a), Range::exact(b), a, b)
        };
        let out = cmp_range(pred, l, r);
        let concrete = i64::from(pred.eval(cl, cr));
        prop_assert!(
            out.contains(concrete),
            "{pred:?}: {cl} ∈ {l}, {cr} ∈ {r}, but {concrete} ∉ {out}"
        );
    }

    /// Strictness: an empty input (the canonical `Empty` or an inverted
    /// interval) makes every transfer result empty — dead edges stay dead
    /// through arithmetic, they never resurrect into spurious values.
    #[test]
    fn empty_ranges_propagate_through_transfers(
        op in any_binop(),
        pred in any_pred(),
        r in any_range(),
        flip in proptest::bool::ANY,
    ) {
        let inverted = Range::Interval { lo: 7, hi: -7 };
        for e in [Range::Empty, inverted] {
            let (l, rr) = if flip { (e, r) } else { (r, e) };
            let b = binop_range(op, l, rr);
            prop_assert!(b.is_empty(), "{op:?}: {l} ⋄ {rr} = {b} not empty");
            let c = cmp_range(pred, l, rr);
            prop_assert!(c.is_empty(), "{pred:?}: {l} ⋄ {rr} = {c} not empty");
        }
    }

    /// Widening termination: the fixpoint over randomly generated loop
    /// nests (including concretely non-terminating ones) finishes with a
    /// bounded number of block updates.
    #[test]
    fn widening_terminates_on_random_loop_cfgs(
        descs in proptest::collection::vec(
            (0i64..3, -8i64..8, -8i64..8, -3i64..4, proptest::bool::ANY),
            1..6,
        ),
    ) {
        let src = loop_program(&descs);
        let program = ipds_ir::parse(&src)
            .unwrap_or_else(|e| panic!("generated program must parse: {e}\n{src}"));
        let alias = AliasAnalysis::analyze(&program);
        let summaries = Summaries::compute(&program, &alias);
        for func in &program.functions {
            let ia = IntervalAnalysis::analyze(&program, func, &alias, &summaries);
            let cap = 64 * (func.blocks.len() as u64 + 1);
            prop_assert!(
                ia.stats.block_updates <= cap,
                "fixpoint took {} updates (cap {cap}) on:\n{src}",
                ia.stats.block_updates
            );
            prop_assert!(ia.reachable(func.entry), "entry must stay reachable");
        }
    }
}

/// Renders a loop-nest program from descriptors: each entry contributes
/// `v = init; while (v < bound) { v = v + step; … }`, nesting the remaining
/// descriptors inside the body when its flag is set.
fn loop_program(descs: &[(i64, i64, i64, i64, bool)]) -> String {
    fn stmts(descs: &[(i64, i64, i64, i64, bool)]) -> String {
        let Some((&(v, init, bound, step, nest), rest)) = descs.split_first() else {
            return String::new();
        };
        let var = ["i", "j", "k"][v.rem_euclid(3) as usize];
        let inner = stmts(rest);
        if nest {
            format!(
                "{var} = {init}; while ({var} < {bound}) {{ {var} = {var} + {step}; {inner} }} "
            )
        } else {
            format!("{var} = {init}; while ({var} < {bound}) {{ {var} = {var} + {step}; }} {inner}")
        }
    }
    format!(
        "fn main() -> int {{ int i; int j; int k; {} return i; }}",
        stmts(descs)
    )
}
