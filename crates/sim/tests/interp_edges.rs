//! Interpreter and attack-machinery edge cases beyond the unit tests.

use ipds_sim::{ExecLimits, ExecStatus, Input, Interp, NullObserver};

fn run(src: &str, inputs: Vec<Input>) -> (ExecStatus, Vec<i64>) {
    let p = ipds_ir::parse(src).unwrap();
    let mut i = Interp::new(&p, inputs, ExecLimits::default());
    let s = i.run(&mut NullObserver);
    (s, i.output().to_vec())
}

#[test]
fn eof_inputs_default_to_zero_and_empty() {
    let (s, out) = run(
        "fn main() -> int { int x; int b[4]; x = read_int(); read_str(b, 3); \
         print_int(x); print_int(strlen(b)); return 0; }",
        vec![],
    );
    assert_eq!(s, ExecStatus::Exited(0));
    assert_eq!(out, vec![0, 0]);
}

#[test]
fn mismatched_input_kinds_are_skipped() {
    // read_int skips a queued string; read_str skips a queued int.
    let (s, out) = run(
        "fn main() -> int { int x; int b[8]; x = read_int(); read_str(b, 6); \
         print_int(x); print_str(b); return 0; }",
        vec![
            Input::Str("skipme".into()),
            Input::Int(5),
            Input::Int(9),
            Input::Str("ok".into()),
        ],
    );
    assert_eq!(s, ExecStatus::Exited(0));
    assert_eq!(out, vec![5, 'o' as i64, 'k' as i64]);
}

#[test]
fn negative_array_index_faults() {
    let (s, _) = run(
        "fn main() -> int { int a[4]; int i; i = read_int(); a[i] = 1; return 0; }",
        vec![Input::Int(-100_000)],
    );
    assert!(matches!(s, ExecStatus::Fault(_)), "{s:?}");
}

#[test]
fn division_and_shift_semantics_are_total() {
    let (s, out) = run(
        "fn main() -> int { int a; a = read_int(); \
         print_int(a / 0); print_int(a % 0); \
         print_int(1 << 70); print_int(a >> 65); \
         return 0; }",
        vec![Input::Int(12)],
    );
    assert_eq!(s, ExecStatus::Exited(0));
    // div/rem by zero -> 0; shifts mask the amount (70 & 63 = 6, 65 & 63 = 1).
    assert_eq!(out, vec![0, 0, 64, 6]);
}

#[test]
fn atoi_parses_and_rejects() {
    let (s, out) = run(
        "fn main() -> int { int b[8]; \
         read_str(b, 7); print_int(atoi(b)); \
         read_str(b, 7); print_int(atoi(b)); \
         read_str(b, 7); print_int(atoi(b)); \
         return 0; }",
        vec![
            Input::Str("42".into()),
            Input::Str("-7".into()),
            Input::Str("junk".into()),
        ],
    );
    assert_eq!(s, ExecStatus::Exited(0));
    assert_eq!(out, vec![42, -7, 0]);
}

#[test]
fn strncmp_respects_bound() {
    let (s, out) = run(
        "fn main() -> int { int a[8]; int b[8]; \
         strcpy(a, \"abcXYZ\"); strcpy(b, \"abcDEF\"); \
         print_int(strncmp(a, b, 3)); \
         print_int(strncmp(a, b, 4)); \
         return 0; }",
        vec![],
    );
    assert_eq!(s, ExecStatus::Exited(0));
    assert_eq!(out[0], 0, "equal in the first 3");
    assert_ne!(out[1], 0, "differ at position 3");
}

#[test]
fn memset_memcpy_roundtrip() {
    let (s, out) = run(
        "fn main() -> int { int a[4]; int b[4]; int i; int acc; \
         memset(a, 7, 4); memcpy(b, a, 4); \
         acc = 0; for (i = 0; i < 4; i = i + 1) { acc = acc + b[i]; } \
         print_int(acc); return 0; }",
        vec![],
    );
    assert_eq!(s, ExecStatus::Exited(0));
    assert_eq!(out, vec![28]);
}

#[test]
fn global_state_persists_across_calls() {
    let (s, out) = run(
        "int counter; \
         fn bump() -> int { counter = counter + 1; return counter; } \
         fn main() -> int { print_int(bump()); print_int(bump()); print_int(bump()); return counter; }",
        vec![],
    );
    assert_eq!(s, ExecStatus::Exited(3));
    assert_eq!(out, vec![1, 2, 3]);
}

#[test]
fn locals_are_fresh_per_activation() {
    // A local must not leak values between activations (frames are zeroed).
    let (s, out) = run(
        "fn probe() -> int { int x; int r; r = x; x = 99; return r; } \
         fn main() -> int { print_int(probe()); print_int(probe()); return 0; }",
        vec![],
    );
    assert_eq!(s, ExecStatus::Exited(0));
    assert_eq!(out, vec![0, 0], "stale frame data leaked");
}

#[test]
fn exit_unwinds_from_deep_in_the_stack() {
    let (s, out) = run(
        "fn deep(int n) -> int { if (n == 0) { exit(42); } return deep(n - 1); } \
         fn main() -> int { print_int(1); deep(10); print_int(2); return 0; }",
        vec![],
    );
    assert_eq!(s, ExecStatus::Exited(42));
    assert_eq!(out, vec![1], "nothing after exit runs");
}

#[test]
fn steps_accounting_is_monotonic_and_resumable() {
    let p = ipds_ir::parse(
        "fn main() -> int { int i; int s; s = 0; \
         for (i = 0; i < 100; i = i + 1) { s = s + i; } return s; }",
    )
    .unwrap();
    let mut i = Interp::new(&p, vec![], ExecLimits::default());
    let mut last = 0;
    while i.status() == &ExecStatus::Running {
        i.run_steps(17, &mut NullObserver);
        assert!(i.steps() >= last);
        last = i.steps();
    }
    assert_eq!(*i.status(), ExecStatus::Exited(4950));

    // A fresh interpreter run in one shot lands on the same step count.
    let mut j = Interp::new(&p, vec![], ExecLimits::default());
    j.run(&mut NullObserver);
    assert_eq!(i.steps(), j.steps(), "chunked and whole runs agree");
}
