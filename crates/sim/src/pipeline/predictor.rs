//! Two-level adaptive branch predictor (Table 1: "2 Level").

/// A gshare-style two-level predictor: global history XOR PC indexes a
/// pattern history table of 2-bit saturating counters.
#[derive(Debug, Clone)]
pub struct TwoLevelPredictor {
    history: u64,
    history_bits: u32,
    pht: Vec<u8>,
    /// Correct predictions.
    pub correct: u64,
    /// Mispredictions.
    pub wrong: u64,
}

impl TwoLevelPredictor {
    /// Creates a predictor with `history_bits` of global history and a PHT
    /// of `2^history_bits` counters.
    pub fn new(history_bits: u32) -> TwoLevelPredictor {
        TwoLevelPredictor {
            history: 0,
            history_bits,
            pht: vec![1; 1 << history_bits], // weakly not-taken
            correct: 0,
            wrong: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.history_bits) - 1;
        (((pc >> 2) ^ self.history) & mask) as usize
    }

    /// Predicts and immediately updates with the actual outcome; returns
    /// whether the prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let counter = self.pht[idx];
        let predicted = counter >= 2;
        let correct = predicted == taken;
        if correct {
            self.correct += 1;
        } else {
            self.wrong += 1;
        }
        self.pht[idx] = match (counter, taken) {
            (3, true) => 3,
            (c, true) => c + 1,
            (0, false) => 0,
            (c, false) => c - 1,
        };
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.history_bits) - 1);
        correct
    }

    /// Misprediction rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        let total = self.correct + self.wrong;
        if total == 0 {
            0.0
        } else {
            self.wrong as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_constant_direction() {
        let mut p = TwoLevelPredictor::new(12);
        // Warmup: the global history register churns through new PHT
        // entries for the first `history_bits` + hysteresis steps.
        for _ in 0..100 {
            p.predict_and_update(0x1000, true);
        }
        let warm_correct = p.correct;
        for _ in 0..100 {
            p.predict_and_update(0x1000, true);
        }
        // The steady-state tail must be perfect.
        assert_eq!(p.correct - warm_correct, 100);
    }

    #[test]
    fn learns_an_alternating_pattern() {
        let mut p = TwoLevelPredictor::new(12);
        let mut taken = false;
        for _ in 0..400 {
            p.predict_and_update(0x2000, taken);
            taken = !taken;
        }
        // History-based indexing learns period-2 patterns almost perfectly.
        assert!(p.miss_rate() < 0.2, "miss rate {}", p.miss_rate());
    }

    #[test]
    fn random_noise_hovers_near_half() {
        let mut p = TwoLevelPredictor::new(10);
        let mut x = 0x12345678u64;
        for _ in 0..2000 {
            // xorshift noise
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            p.predict_and_update(0x3000, x & 1 == 1);
        }
        let mr = p.miss_rate();
        assert!(mr > 0.3 && mr < 0.7, "miss rate {mr}");
    }
}
