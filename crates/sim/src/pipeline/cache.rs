//! Set-associative cache models with LRU replacement.

use ipds_runtime::HwConfig;

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    block_shift: u32,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `size` bytes, `ways`-associative, `block` bytes
    /// per line.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets).
    pub fn new(size: u32, ways: u32, block: u32) -> Cache {
        let sets = (size / (ways * block)) as usize;
        assert!(sets > 0, "cache too small for its geometry");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets,
            ways: ways as usize,
            block_shift: block.trailing_zeros(),
            tags: vec![u64::MAX; sets * ways as usize],
            stamps: vec![0; sets * ways as usize],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Accesses `addr` (a byte address); returns `true` on hit and fills the
    /// line on miss.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line = addr >> self.block_shift;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        for w in 0..self.ways {
            if self.tags[base + w] == line {
                self.stamps[base + w] = self.tick;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        // Replace LRU.
        let mut victim = 0;
        for w in 1..self.ways {
            if self.stamps[base + w] < self.stamps[base + victim] {
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.tick;
        false
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

/// A small fully-associative TLB over 4 KiB pages (Table 1 charges a
/// 30-cycle miss).
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<u64>,
    stamps: Vec<u64>,
    tick: u64,
    /// Misses observed.
    pub misses: u64,
    /// Hits observed.
    pub hits: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` slots.
    pub fn new(entries: usize) -> Tlb {
        Tlb {
            entries: vec![u64::MAX; entries.max(1)],
            stamps: vec![0; entries.max(1)],
            tick: 0,
            misses: 0,
            hits: 0,
        }
    }

    /// Touches the page of `addr`; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let page = addr >> 12;
        for (i, e) in self.entries.iter().enumerate() {
            if *e == page {
                self.stamps[i] = self.tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        let mut victim = 0;
        for i in 1..self.entries.len() {
            if self.stamps[i] < self.stamps[victim] {
                victim = i;
            }
        }
        self.entries[victim] = page;
        self.stamps[victim] = self.tick;
        false
    }
}

/// L1-I / L1-D / unified-L2 hierarchy (plus a data TLB) returning access
/// latencies per Table 1.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Instruction L1.
    pub l1i: Cache,
    /// Data L1.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    /// Data TLB (64 entries, 4 KiB pages).
    pub dtlb: Tlb,
    l1_latency: u32,
    l2_latency: u32,
    mem_latency: u32,
    tlb_miss: u32,
}

impl Hierarchy {
    /// Builds the hierarchy from the hardware config.
    pub fn new(config: &HwConfig) -> Hierarchy {
        Hierarchy {
            l1i: Cache::new(config.l1_size, config.l1_ways, config.block_size),
            l1d: Cache::new(config.l1_size, config.l1_ways, config.block_size),
            l2: Cache::new(config.l2_size, config.l2_ways, config.block_size),
            dtlb: Tlb::new(64),
            l1_latency: config.l1_latency,
            l2_latency: config.l2_latency,
            mem_latency: config.mem_first_chunk
                + (config.block_size / config.mem_bus_bytes).saturating_sub(1)
                    * config.mem_inter_chunk,
            tlb_miss: config.tlb_miss,
        }
    }

    /// Latency of an instruction fetch at `pc`.
    pub fn fetch(&mut self, pc: u64) -> u32 {
        if self.l1i.access(pc) {
            self.l1_latency
        } else if self.l2.access(pc) {
            self.l2_latency
        } else {
            self.mem_latency
        }
    }

    /// Latency of a data access at byte address `addr`, including any TLB
    /// refill.
    pub fn data(&mut self, addr: u64) -> u32 {
        let tlb_penalty = if self.dtlb.access(addr) {
            0
        } else {
            self.tlb_miss
        };
        let cache = if self.l1d.access(addr) {
            self.l1_latency
        } else if self.l2.access(addr) {
            self.l2_latency
        } else {
            self.mem_latency
        };
        cache + tlb_penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(1024, 2, 32);
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x104), "same line");
        assert!(!c.access(0x100 + 32), "next line misses");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2-way, 32B lines, 2 sets → set stride 64.
        let mut c = Cache::new(128, 2, 32);
        assert!(!c.access(0));
        assert!(!c.access(64)); // same set, second way
        assert!(c.access(0)); // refresh way 0
        assert!(!c.access(128)); // evicts line 64 (LRU)
        assert!(c.access(0), "line 0 must survive");
        assert!(!c.access(64), "line 64 was evicted");
    }

    #[test]
    fn hierarchy_latencies_are_ordered() {
        let cfg = HwConfig::table1_default();
        let mut h = Hierarchy::new(&cfg);
        let miss = h.data(0x8000);
        let l1_hit = h.data(0x8000);
        assert!(miss > l1_hit);
        assert_eq!(l1_hit, cfg.l1_latency);
        // A different address that misses L1 but hits L2 after a first
        // touch through both levels.
        let _ = h.data(0x20000);
        // Evict nothing relevant; re-touch keeps hitting.
        assert_eq!(h.data(0x20000), cfg.l1_latency);
    }

    #[test]
    fn tlb_hits_within_page_and_misses_across() {
        let mut t = Tlb::new(4);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1FF8), "same 4K page");
        assert!(!t.access(0x2000), "next page");
        // Fill beyond capacity: LRU evicts page 0x1.
        assert!(!t.access(0x3000));
        assert!(!t.access(0x4000));
        assert!(!t.access(0x5000));
        assert!(!t.access(0x6000));
        assert!(!t.access(0x1000), "page 1 was evicted");
        assert!(t.hits >= 1 && t.misses >= 6);
    }

    #[test]
    fn data_latency_includes_tlb_penalty() {
        let cfg = HwConfig::table1_default();
        let mut h = Hierarchy::new(&cfg);
        // First touch: cache miss + TLB miss.
        let first = h.data(0x40_0000);
        // Second touch: everything warm.
        let warm = h.data(0x40_0000);
        assert!(first >= warm + cfg.tlb_miss, "first {first} warm {warm}");
    }

    #[test]
    fn miss_rate_reporting() {
        let mut c = Cache::new(1024, 2, 32);
        for i in 0..100u64 {
            c.access(i * 4096);
        }
        assert!(c.stats().miss_rate() > 0.9);
    }
}
