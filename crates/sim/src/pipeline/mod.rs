//! Cycle-level timing model (the SimpleScalar stand-in).
//!
//! The paper's performance numbers (Fig. 9, the 0.79% mean slowdown, and
//! the 11.7-cycle mean detection latency) come from a cycle-accurate
//! SimpleScalar model of Table 1's 8-wide out-of-order core with the IPDS
//! unit attached. We model the same machine at reduced fidelity but with the
//! mechanisms that matter for those numbers:
//!
//! * an 8-wide commit front end (base throughput `1/commit_width` cycles
//!   per instruction);
//! * L1/L2/memory hierarchy with Table 1 latencies — load misses stall
//!   partially (an out-of-order core hides much of the latency; the model
//!   uses a fixed overlap factor calibrated to SimpleScalar-like CPIs);
//! * a 2-level branch predictor whose mispredictions charge a refill
//!   penalty;
//! * the IPDS request queue: every committed branch enqueues its table
//!   accesses; the engine retires [`ipds_runtime::HwConfig::ipds_ops_per_cycle`]
//!   accesses per cycle; commit stalls only when the queue is full; spills
//!   and fills of the table stacks occupy the engine.
//!
//! Detection latency is measured exactly as the paper describes: from the
//! moment a branch is sent to the IPDS to the moment its verification
//! completes.

pub mod cache;
pub mod core;
pub mod predictor;

pub use cache::{Cache, CacheStats, Hierarchy};
pub use core::{timed_run, timed_run_metered, PerfReport, TimingModel};
pub use predictor::TwoLevelPredictor;
