//! The core timing model and the IPDS engine timing.

use std::collections::VecDeque;

use ipds_analysis::ProgramAnalysis;
use ipds_ir::{FuncId, Program};
use ipds_runtime::{HwConfig, IpdsChecker, OnChipModel};

use crate::interp::{ExecLimits, ExecStatus, Input, Interp};
use crate::observer::ExecObserver;
use crate::pipeline::cache::Hierarchy;
use crate::pipeline::predictor::TwoLevelPredictor;

/// Millicycles per cycle (fixed-point time base).
const MC: u64 = 1000;

/// Performance results of one timed run.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Total cycles (fixed point rounded up).
    pub cycles: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// Committed conditional branches.
    pub branches: u64,
    /// Branch misprediction rate.
    pub branch_miss_rate: f64,
    /// L1-D miss rate.
    pub l1d_miss_rate: f64,
    /// Whether the IPDS was attached.
    pub ipds_enabled: bool,
    /// Cycles the core stalled because the IPDS queue was full.
    pub ipds_stall_cycles: u64,
    /// Mean branch→verification-complete latency in cycles.
    pub mean_detection_latency: f64,
    /// Median (p50) verification latency in cycles.
    pub p50_detection_latency: f64,
    /// Tail (p95) verification latency in cycles.
    pub p95_detection_latency: f64,
    /// Maximum observed IPDS queue occupancy.
    pub max_queue_depth: usize,
    /// Table-stack spill/fill events.
    pub spills: u64,
    /// Alarms raised (0 for clean runs).
    pub alarms: u64,
    /// How the run terminated.
    pub status: ExecStatus,
}

impl PerfReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// The cycle-level model. Implements [`ExecObserver`] so the interpreter
/// drives it directly in commit order.
#[derive(Debug)]
pub struct TimingModel<'a> {
    config: HwConfig,
    hierarchy: Hierarchy,
    predictor: TwoLevelPredictor,
    /// Some(…) when the IPDS unit is attached.
    ipds: Option<IpdsTiming<'a>>,
    /// Current time in millicycles.
    now_mc: u64,
    instructions: u64,
    branches: u64,
    ipds_stall_mc: u64,
}

#[derive(Debug)]
struct IpdsTiming<'a> {
    checker: IpdsChecker<'a>,
    onchip: OnChipModel<'a>,
    /// Completion times (millicycles) of outstanding requests.
    queue: VecDeque<u64>,
    /// When the engine becomes free (millicycles).
    engine_free_mc: u64,
    latency_sum_mc: u64,
    latency_count: u64,
    /// All verification latencies (millicycles), for percentile reporting.
    latencies_mc: Vec<u64>,
    max_queue: usize,
}

impl<'a> TimingModel<'a> {
    /// Creates a model; pass `Some(analysis)` to attach the IPDS unit.
    pub fn new(config: HwConfig, analysis: Option<&'a ProgramAnalysis>) -> TimingModel<'a> {
        let hierarchy = Hierarchy::new(&config);
        let ipds = analysis.map(|a| IpdsTiming {
            checker: IpdsChecker::new(a),
            onchip: OnChipModel::new(a, &config),
            queue: VecDeque::new(),
            engine_free_mc: 0,
            latency_sum_mc: 0,
            latency_count: 0,
            latencies_mc: Vec::new(),
            max_queue: 0,
        });
        TimingModel {
            config,
            hierarchy,
            predictor: TwoLevelPredictor::new(14),
            ipds,
            now_mc: 0,
            instructions: 0,
            branches: 0,
            ipds_stall_mc: 0,
        }
    }

    /// Finalizes the run into a report.
    pub fn report(&self, status: ExecStatus) -> PerfReport {
        let (ipds_enabled, stalls, latency, p50, p95, maxq, spills, alarms) = match &self.ipds {
            Some(i) => {
                let mean = if i.latency_count == 0 {
                    0.0
                } else {
                    i.latency_sum_mc as f64 / (i.latency_count as f64 * MC as f64)
                };
                let mut sorted = i.latencies_mc.clone();
                sorted.sort_unstable();
                let pct = |q: f64| -> f64 {
                    if sorted.is_empty() {
                        0.0
                    } else {
                        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
                        sorted[idx] as f64 / MC as f64
                    }
                };
                (
                    true,
                    self.ipds_stall_mc.div_ceil(MC),
                    mean,
                    pct(0.50),
                    pct(0.95),
                    i.max_queue,
                    i.onchip.stats().spills + i.onchip.stats().fills,
                    i.checker.stats().alarms,
                )
            }
            None => (false, 0, 0.0, 0.0, 0.0, 0, 0, 0),
        };
        PerfReport {
            cycles: self.now_mc.div_ceil(MC),
            instructions: self.instructions,
            branches: self.branches,
            branch_miss_rate: self.predictor.miss_rate(),
            l1d_miss_rate: self.hierarchy.l1d.stats().miss_rate(),
            ipds_enabled,
            ipds_stall_cycles: stalls,
            mean_detection_latency: latency,
            p50_detection_latency: p50,
            p95_detection_latency: p95,
            max_queue_depth: maxq,
            spills,
            alarms,
            status,
        }
    }

    /// Read access to the attached checker (for alarm inspection).
    pub fn checker(&self) -> Option<&IpdsChecker<'a>> {
        self.ipds.as_ref().map(|i| &i.checker)
    }

    /// Exports the run's timing telemetry into a metrics registry:
    /// committed-work counters plus the per-branch check-latency histogram
    /// (`check_latency_cycles`, one observation per verified branch).
    pub fn export_metrics(&self, metrics: &mut ipds_telemetry::MetricsRegistry) {
        metrics.add("timed_instructions", self.instructions);
        metrics.add("timed_branches", self.branches);
        metrics.add("timed_cycles", self.now_mc.div_ceil(MC));
        metrics.add("ipds_stall_cycles", self.ipds_stall_mc.div_ceil(MC));
        if let Some(ipds) = &self.ipds {
            metrics.add("ipds_table_accesses", ipds.checker.stats().table_accesses);
            metrics.add("ipds_spill_fills", {
                ipds.onchip.stats().spills + ipds.onchip.stats().fills
            });
            for &lat_mc in &ipds.latencies_mc {
                metrics.observe("check_latency_cycles", lat_mc.div_ceil(MC));
            }
        }
    }

    fn drain_queue(queue: &mut VecDeque<u64>, now_mc: u64) {
        while queue.front().is_some_and(|&c| c <= now_mc) {
            queue.pop_front();
        }
    }
}

impl ExecObserver for TimingModel<'_> {
    const WANTS_INST: bool = true;
    const WANTS_MEM: bool = true;

    fn on_inst(&mut self, pc: u64) {
        self.instructions += 1;
        // Base commit throughput.
        self.now_mc += MC / self.config.commit_width as u64;
        // Instruction fetch: misses stall the front end, partially hidden
        // by the fetch queue (half the extra latency is exposed).
        let lat = self.hierarchy.fetch(pc);
        if lat > self.config.l1_latency {
            self.now_mc += (lat - self.config.l1_latency) as u64 * MC / 2;
        }
    }

    fn on_mem(&mut self, _pc: u64, addr: usize, store: bool) {
        // Cells are 8 bytes.
        let lat = self.hierarchy.data((addr as u64) * 8);
        if !store && lat > self.config.l1_latency {
            // Out-of-order execution hides part of a load miss; expose 40%.
            self.now_mc += (lat - self.config.l1_latency) as u64 * MC * 2 / 5;
        }
    }

    fn on_branch(&mut self, pc: u64, dir: bool) {
        self.branches += 1;
        if !self.predictor.predict_and_update(pc, dir) {
            self.now_mc += self.config.mispredict_penalty as u64 * MC;
        }
        let config = &self.config;
        if let Some(ipds) = &mut self.ipds {
            // Functional check: counts the table accesses this branch costs.
            let outcome = ipds.checker.on_branch(pc, dir);
            Self::drain_queue(&mut ipds.queue, self.now_mc);
            // Queue-full back-pressure: commit waits for the oldest request.
            while ipds.queue.len() >= config.ipds_queue_entries as usize {
                let head = *ipds.queue.front().expect("non-empty full queue");
                let stall = head.saturating_sub(self.now_mc);
                self.ipds_stall_mc += stall;
                self.now_mc = head;
                Self::drain_queue(&mut ipds.queue, self.now_mc);
            }
            let per_access_mc =
                config.table_access_latency as u64 * MC / config.ipds_ops_per_cycle as u64;
            let start = ipds.engine_free_mc.max(self.now_mc);
            let completion = start + outcome.table_accesses as u64 * per_access_mc;
            ipds.engine_free_mc = completion;
            ipds.queue.push_back(completion);
            ipds.max_queue = ipds.max_queue.max(ipds.queue.len());
            if outcome.verified {
                ipds.latency_sum_mc += completion - self.now_mc;
                ipds.latency_count += 1;
                ipds.latencies_mc.push(completion - self.now_mc);
            }
        }
    }

    fn on_call(&mut self, func: FuncId) {
        // Call overhead (link/stack management).
        self.now_mc += MC;
        let config = &self.config;
        if let Some(ipds) = &mut self.ipds {
            ipds.checker.on_call(func);
            let spill_cycles = ipds.onchip.on_call(func, config);
            // Spills occupy the IPDS engine, not the core.
            ipds.engine_free_mc = ipds.engine_free_mc.max(self.now_mc) + spill_cycles * MC;
        }
    }

    fn on_return(&mut self) {
        self.now_mc += MC;
        let config = &self.config;
        if let Some(ipds) = &mut self.ipds {
            // Underflows are counted inside the models; the timing model
            // just skips the fill cost for a return that had no frame.
            let _ = ipds.checker.on_return();
            let fill_cycles = ipds.onchip.on_return(config).unwrap_or(0);
            ipds.engine_free_mc = ipds.engine_free_mc.max(self.now_mc) + fill_cycles * MC;
        }
    }
}

/// Convenience driver: execute `program` on `inputs` under the timing model
/// and return the report. Attach the IPDS by passing `Some(analysis)`.
pub fn timed_run(
    program: &Program,
    inputs: &[Input],
    analysis: Option<&ProgramAnalysis>,
    config: &HwConfig,
    limits: ExecLimits,
) -> PerfReport {
    let mut model = TimingModel::new(config.clone(), analysis);
    if let Some(ipds) = &mut model.ipds {
        let main = program.main().expect("main").id;
        ipds.checker.on_call(main);
        ipds.onchip.on_call(main, config);
    }
    let mut interp = Interp::new(program, inputs.to_vec(), limits);
    let status = interp.run(&mut model);
    model.report(status)
}

/// Like [`timed_run`], additionally folding the run's timing telemetry
/// (work counters and the check-latency histogram) into `metrics`.
pub fn timed_run_metered(
    program: &Program,
    inputs: &[Input],
    analysis: Option<&ProgramAnalysis>,
    config: &HwConfig,
    limits: ExecLimits,
    metrics: &mut ipds_telemetry::MetricsRegistry,
) -> PerfReport {
    let mut model = TimingModel::new(config.clone(), analysis);
    if let Some(ipds) = &mut model.ipds {
        let main = program.main().expect("main").id;
        ipds.checker.on_call(main);
        ipds.onchip.on_call(main, config);
    }
    let mut interp = Interp::new(program, inputs.to_vec(), limits);
    let status = interp.run(&mut model);
    model.export_metrics(metrics);
    model.report(status)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipds_analysis::{analyze_program, AnalysisConfig};

    const LOOPY: &str = "fn work(int n) -> int { int i; int acc; acc = 0; \
        for (i = 0; i < n; i = i + 1) { \
          if (acc > 1000) { acc = acc - 1000; } \
          acc = acc + i; \
        } return acc; } \
        fn main() -> int { int r; int j; r = 0; \
        for (j = 0; j < 50; j = j + 1) { r = r + work(40); } return r; }";

    #[test]
    fn baseline_and_ipds_agree_functionally() {
        let p = ipds_ir::parse(LOOPY).unwrap();
        let a = analyze_program(&p, &AnalysisConfig::default());
        let cfg = HwConfig::table1_default();
        let base = timed_run(&p, &[], None, &cfg, ExecLimits::default());
        let with = timed_run(&p, &[], Some(&a), &cfg, ExecLimits::default());
        assert_eq!(base.instructions, with.instructions);
        assert_eq!(base.branches, with.branches);
        assert_eq!(with.alarms, 0, "clean run must not alarm");
        assert!(matches!(base.status, ExecStatus::Exited(_)));
    }

    #[test]
    fn ipds_overhead_is_small() {
        let p = ipds_ir::parse(LOOPY).unwrap();
        let a = analyze_program(&p, &AnalysisConfig::default());
        let cfg = HwConfig::table1_default();
        let base = timed_run(&p, &[], None, &cfg, ExecLimits::default());
        let with = timed_run(&p, &[], Some(&a), &cfg, ExecLimits::default());
        let overhead = with.cycles as f64 / base.cycles as f64 - 1.0;
        assert!(overhead >= 0.0);
        assert!(overhead < 0.05, "IPDS overhead {overhead:.4} too large");
    }

    #[test]
    fn detection_latency_is_pipeline_scale() {
        let p = ipds_ir::parse(LOOPY).unwrap();
        let a = analyze_program(&p, &AnalysisConfig::default());
        let cfg = HwConfig::table1_default();
        let with = timed_run(&p, &[], Some(&a), &cfg, ExecLimits::default());
        assert!(with.mean_detection_latency > 0.0);
        assert!(
            with.mean_detection_latency < 30.0,
            "latency {} should be within ~a pipeline depth",
            with.mean_detection_latency
        );
    }

    #[test]
    fn starved_engine_creates_stalls() {
        let p = ipds_ir::parse(LOOPY).unwrap();
        let a = analyze_program(&p, &AnalysisConfig::default());
        let mut cfg = HwConfig::table1_default();
        // Throttle the engine hard and shrink the queue: stalls must appear.
        cfg.table_access_latency = 8;
        cfg.ipds_ops_per_cycle = 1;
        cfg.ipds_queue_entries = 2;
        let with = timed_run(&p, &[], Some(&a), &cfg, ExecLimits::default());
        assert!(with.ipds_stall_cycles > 0);
        let base = timed_run(&p, &[], None, &cfg, ExecLimits::default());
        assert!(with.cycles > base.cycles);
    }

    #[test]
    fn ipc_is_sane() {
        let p = ipds_ir::parse(LOOPY).unwrap();
        let cfg = HwConfig::table1_default();
        let r = timed_run(&p, &[], None, &cfg, ExecLimits::default());
        let ipc = r.ipc();
        assert!(ipc > 0.5 && ipc <= cfg.commit_width as f64, "ipc {ipc}");
    }
}
