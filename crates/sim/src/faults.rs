//! Deterministic seeded fault injection and detection-latency accounting.
//!
//! The paper's §7 evaluation axis is not just *whether* the IPDS flags
//! tampering but *how fast*; this module supplies the systematic engine the
//! attack campaigns lack. A fault campaign perturbs three sites:
//!
//! * **table image** — bit flips in the serialized [`TableImage`] before the
//!   loader maps it. With the loader's checksum on (the shipped
//!   configuration) every flip must be rejected at load time; with the
//!   checksum off (restamped after corruption, modeling a loader without
//!   integrity checking) the corrupted tables load and the campaign measures
//!   whether the *runtime* catches them;
//! * **checker state** — a live BSV entry of the active frame forced to a
//!   chosen status mid-run, the paper's protected-memory-corruption threat;
//! * **guest memory** — a single bit of a live interpreter cell flipped
//!   mid-run, the soft-error / tampering model of the attack campaigns but
//!   graded on latency.
//!
//! Every fault is described by a [`FaultPlan`] (site × trigger step ×
//! mutation) derived purely from the campaign seed via the in-repo
//! splitmix64/xoshiro256** generator — the exact per-index protocol the
//! attack engine uses — so a campaign is **bit-identical at any thread
//! count**. Outcomes are graded [`Detected`](FaultOutcome::Detected) /
//! [`Masked`](FaultOutcome::Masked) / [`Crashed`](FaultOutcome::Crashed),
//! and each detection records its **latency in committed branches** between
//! the injection instant and the flag (zero for load-time rejections); the
//! latencies feed the `faults.detect_latency_branches` histogram and the
//! exact-median `detect_latency_p50` the benchmark JSON carries.

use ipds_analysis::{BranchStatus, ProgramAnalysis, TableImage};
use ipds_ir::Program;
use ipds_runtime::{IpdsChecker, RuntimeError};
use ipds_telemetry::MetricsRegistry;

use crate::attack::GoldenRun;
use crate::interp::{ExecLimits, ExecStatus, Input, Interp};
use crate::observer::{ExecObserver, IpdsObserver};
use crate::rng::StdRng;

/// The canonical `faults.*` counter list. `docs/FAULTS.md` documents exactly
/// these keys and every fault campaign emits exactly this set (enforced by
/// `tests/docs_metrics.rs`).
pub const FAULT_COUNTERS: &[&str] = &[
    "faults.injected",
    "faults.image",
    "faults.checker",
    "faults.memory",
    "faults.detected",
    "faults.masked",
    "faults.crashed",
    "faults.image_undetected",
];

/// The canonical `faults.*` histogram list (same contract as
/// [`FAULT_COUNTERS`]): detection latency in committed branches.
pub const FAULT_HISTOGRAMS: &[&str] = &["faults.detect_latency_branches"];

/// Which state a fault perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The serialized table image, before the loader maps it.
    TableImage,
    /// A live BSV entry of the checker's top frame.
    CheckerState,
    /// A live interpreter memory cell.
    Memory,
}

/// The mutation a fault applies. Raw draws (`bits`, `slot`, `cell`) are
/// reduced modulo the live target space at injection time, so plans are
/// derivable from the seed alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultMutation {
    /// XOR the given bit positions into the image bytes (reduced modulo the
    /// image size, or the payload pool when the checksum is restamped).
    ImageBits(Vec<u64>),
    /// Force a BSV slot of the live top frame to `status` (rotated to the
    /// next status if the slot already holds it — a fault must change
    /// state).
    BsvStatus {
        /// Raw slot draw, reduced modulo the top frame's BSV length.
        slot: u64,
        /// The status to force.
        status: BranchStatus,
    },
    /// Flip one bit of a live memory cell.
    MemoryBit {
        /// Raw cell draw, reduced modulo the live mutable cell count.
        cell: u64,
        /// Bit position within the 64-bit cell.
        bit: u32,
    },
}

/// One planned fault: site × trigger step × mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fault index within the campaign (also selects its RNG stream).
    pub index: u32,
    /// Interpreter step after which the fault is injected. Always 0 for
    /// image faults — they strike before the program runs.
    pub trigger_step: u64,
    /// What the fault does.
    pub mutation: FaultMutation,
}

impl FaultPlan {
    /// The site this plan perturbs.
    pub fn site(&self) -> FaultSite {
        match self.mutation {
            FaultMutation::ImageBits(_) => FaultSite::TableImage,
            FaultMutation::BsvStatus { .. } => FaultSite::CheckerState,
            FaultMutation::MemoryBit { .. } => FaultSite::Memory,
        }
    }
}

/// What the campaign observed for one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnomalyReport {
    /// The loader rejected the corrupted image (typed [`ImageError`]
    /// rendered to text), or its structural cross-check failed.
    ///
    /// [`ImageError`]: ipds_analysis::ImageError
    ImageRejected(String),
    /// The checker raised an alarm after the injection.
    Alarm {
        /// PC of the flagging branch.
        pc: u64,
        /// The checker's branch sequence number at the flag.
        branch_seq: u64,
    },
    /// A runtime model caught a protocol violation.
    Runtime(RuntimeError),
}

/// Graded outcome of one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// An anomaly was flagged, `latency_branches` committed branches after
    /// the injection (0 = rejected at load / flagged by the very next
    /// branch).
    Detected {
        /// What flagged the fault.
        report: AnomalyReport,
        /// Committed branches strictly between injection and flag.
        latency_branches: u64,
    },
    /// The run completed cleanly with no anomaly — the fault was absorbed
    /// (or found no live target to strike).
    Masked,
    /// The run terminated abnormally (memory fault or budget exhaustion)
    /// without an IPDS flag.
    Crashed {
        /// How the run ended.
        status: ExecStatus,
    },
}

/// A fault-campaign specification.
#[derive(Debug, Clone)]
pub struct FaultCampaign {
    /// Faults *per site*: the campaign injects `flips` image faults,
    /// `flips` checker-state faults and `flips` memory faults.
    pub flips: u32,
    /// RNG seed; every fault's stream derives from it.
    pub seed: u64,
    /// Whether the loader verifies the image checksum. On (the default),
    /// image faults are single-bit flips anywhere in the image and every
    /// one must be rejected at load. Off, the corruption lands in the
    /// payload pool, the checksum is restamped, and detection falls to the
    /// runtime.
    pub checksum: bool,
    /// Execution limits per run.
    pub limits: ExecLimits,
}

impl Default for FaultCampaign {
    fn default() -> Self {
        FaultCampaign {
            flips: 32,
            seed: 0x1bd5,
            checksum: true,
            limits: ExecLimits::default(),
        }
    }
}

impl FaultCampaign {
    /// Total faults the campaign injects (all three sites).
    pub fn total(&self) -> u32 {
        self.flips.saturating_mul(3)
    }
}

/// Aggregate results of a fault campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCampaignResult {
    /// Faults injected in total.
    pub injected: u32,
    /// Image faults injected.
    pub image: u32,
    /// Checker-state faults injected.
    pub checker: u32,
    /// Memory faults injected.
    pub memory: u32,
    /// Faults flagged as anomalies.
    pub detected: u32,
    /// Faults absorbed without any observable anomaly.
    pub masked: u32,
    /// Faults that crashed the run without an IPDS flag.
    pub crashed: u32,
    /// Image faults that loaded despite the checksum being on — must be 0.
    pub image_undetected: u32,
    /// Detection latencies in fault-index order (one entry per detected
    /// fault), so the exact percentiles are reproducible.
    pub latencies: Vec<u64>,
}

impl FaultCampaignResult {
    /// Fraction of injected faults that were detected.
    pub fn detected_rate(&self) -> f64 {
        self.detected as f64 / self.injected.max(1) as f64
    }

    /// Exact median detection latency in branches (0 when nothing was
    /// detected).
    pub fn detect_latency_p50(&self) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }
}

/// The derived RNG seed of fault `i` — the same xor-splitmix stream
/// protocol the attack engine uses, so serial and parallel campaigns are
/// bit-identical.
pub fn fault_seed(campaign: &FaultCampaign, i: u32) -> u64 {
    campaign.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1))
}

/// The site fault `i` strikes: round-robin over the three sites, so every
/// campaign size covers all of them evenly.
pub fn fault_site(i: u32) -> FaultSite {
    match i % 3 {
        0 => FaultSite::TableImage,
        1 => FaultSite::CheckerState,
        _ => FaultSite::Memory,
    }
}

/// Derives fault `i`'s complete plan from the campaign seed. Pure function
/// of `(campaign, golden_steps, i)` — the shared protocol both engines run.
pub fn fault_plan(campaign: &FaultCampaign, golden_steps: u64, i: u32) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(fault_seed(campaign, i));
    match fault_site(i) {
        FaultSite::TableImage => {
            // Checksum on: a single-bit flip (the acceptance matrix the
            // loader must reject exhaustively). Checksum off: 1–3 flips in
            // the payload pool.
            let nbits = if campaign.checksum {
                1
            } else {
                1 + rng.gen_range(0..3usize)
            };
            let bits = (0..nbits).map(|_| rng.next_u64()).collect();
            FaultPlan {
                index: i,
                trigger_step: 0,
                mutation: FaultMutation::ImageBits(bits),
            }
        }
        FaultSite::CheckerState => {
            let trigger_step = trigger_in_run(&mut rng, golden_steps);
            let status = match rng.gen_range(0..3u32) {
                0 => BranchStatus::Taken,
                1 => BranchStatus::NotTaken,
                _ => BranchStatus::Unknown,
            };
            FaultPlan {
                index: i,
                trigger_step,
                mutation: FaultMutation::BsvStatus {
                    slot: rng.next_u64(),
                    status,
                },
            }
        }
        FaultSite::Memory => {
            let trigger_step = trigger_in_run(&mut rng, golden_steps);
            FaultPlan {
                index: i,
                trigger_step,
                mutation: FaultMutation::MemoryBit {
                    cell: rng.next_u64(),
                    bit: rng.gen_range(0..64u32),
                },
            }
        }
    }
}

/// Trigger anywhere in the first 95% of the golden run, mirroring the
/// attack engine's protocol.
fn trigger_in_run(rng: &mut StdRng, golden_steps: u64) -> u64 {
    let hi = (golden_steps.saturating_mul(95) / 100).max(2);
    rng.gen_range(1..hi)
}

/// Reusable fault executor: one interpreter arena plus one checker, recycled
/// across every live-state fault it runs. Each worker thread of the parallel
/// engine owns one `FaultRunner`; the borrowed program, analysis, image and
/// inputs are shared by all of them.
#[derive(Debug)]
pub struct FaultRunner<'a> {
    analysis: &'a ProgramAnalysis,
    image: &'a TableImage,
    inputs: &'a [Input],
    main: ipds_ir::FuncId,
    interp: Interp<'a>,
    ipds: IpdsObserver<'a>,
}

/// Drives a checker built over *corrupted* tables leniently: probe misses
/// (unknown PCs) are skipped, protocol violations are absorbed into the
/// checker's own counters.
struct LenientIpds<'a> {
    checker: IpdsChecker<'a>,
}

impl ExecObserver for LenientIpds<'_> {
    fn on_branch(&mut self, pc: u64, dir: bool) {
        let _ = self.checker.on_branch_lenient(pc, dir);
    }
    fn on_call(&mut self, func: ipds_ir::FuncId) {
        self.checker.on_call(func);
    }
    fn on_return(&mut self) {
        let _ = self.checker.on_return();
    }
}

impl<'a> FaultRunner<'a> {
    /// Builds a runner over shared campaign artifacts.
    ///
    /// # Panics
    ///
    /// Panics if the program has no `main`.
    pub fn new(
        program: &'a Program,
        analysis: &'a ProgramAnalysis,
        image: &'a TableImage,
        inputs: &'a [Input],
        limits: ExecLimits,
    ) -> FaultRunner<'a> {
        FaultRunner {
            analysis,
            image,
            inputs,
            main: program.main().expect("program must define `main`").id,
            interp: Interp::new(program, inputs.to_vec(), limits),
            ipds: IpdsObserver::new(IpdsChecker::new(analysis)),
        }
    }

    /// Executes one planned fault and grades its outcome.
    pub fn run(&mut self, campaign: &FaultCampaign, plan: &FaultPlan) -> FaultOutcome {
        match &plan.mutation {
            FaultMutation::ImageBits(bits) => self.run_image_fault(campaign, bits),
            FaultMutation::BsvStatus { .. } | FaultMutation::MemoryBit { .. } => {
                self.run_live_fault(plan)
            }
        }
    }

    /// Corrupts the image bytes, then either expects the loader to reject
    /// them (checksum on) or loads them restamped and measures runtime
    /// detection (checksum off).
    fn run_image_fault(&mut self, campaign: &FaultCampaign, bits: &[u64]) -> FaultOutcome {
        let mut bytes = self.image.as_bytes().to_vec();
        let (lo_bit, span_bits) = if campaign.checksum {
            (0u64, (bytes.len() * 8) as u64)
        } else {
            // Restrict to the payload pool: header/info corruption is
            // caught structurally whether or not the checksum runs, so the
            // interesting no-checksum surface is the table payload.
            let pool = self.image.payload_offset().unwrap_or(0).min(bytes.len());
            ((pool * 8) as u64, ((bytes.len() - pool) * 8).max(1) as u64)
        };
        // Dedup after reduction so paired draws cannot cancel each other.
        let mut positions: Vec<u64> = bits.iter().map(|b| lo_bit + b % span_bits).collect();
        positions.sort_unstable();
        positions.dedup();
        for pos in positions {
            bytes[(pos / 8) as usize] ^= 1 << (pos % 8);
        }
        let mut corrupted = TableImage::from_bytes(bytes);
        if !campaign.checksum {
            corrupted.restamp_checksum();
        }
        let loaded = match corrupted.load() {
            Err(e) => {
                return FaultOutcome::Detected {
                    report: AnomalyReport::ImageRejected(e.to_string()),
                    latency_branches: 0,
                }
            }
            Ok(a) => a,
        };
        if campaign.checksum {
            // The loader accepted a flipped image: the undetected case the
            // CLI gate fails on. Graded masked; the recorder counts it.
            return FaultOutcome::Masked;
        }
        if loaded.functions.len() != self.analysis.functions.len() {
            // The loader cross-checks the function count against the
            // binary's own function table.
            return FaultOutcome::Detected {
                report: AnomalyReport::ImageRejected("function count mismatch".into()),
                latency_branches: 0,
            };
        }
        // Run the clean program under the corrupted tables: any alarm on
        // this benign trace is the runtime detecting the corruption.
        self.interp.reset(self.inputs.iter().cloned());
        let mut obs = LenientIpds {
            checker: IpdsChecker::new(&loaded),
        };
        obs.checker.on_call(self.main);
        let status = self.interp.run(&mut obs);
        grade_run(&obs.checker, 0, true, status)
    }

    /// Runs to the trigger step, injects into live checker/memory state,
    /// and grades how the rest of the run ends.
    fn run_live_fault(&mut self, plan: &FaultPlan) -> FaultOutcome {
        self.interp.reset(self.inputs.iter().cloned());
        self.ipds.checker.reset();
        self.ipds.checker.on_call(self.main);
        self.interp.run_steps(plan.trigger_step, &mut self.ipds);

        let branches_at_injection = self.ipds.checker.stats().branches;
        let running = self.interp.status() == &ExecStatus::Running;
        let injected = running
            && match plan.mutation {
                FaultMutation::BsvStatus { slot, status } => {
                    let len = self.ipds.checker.top_bsv_len();
                    len > 0 && {
                        let s = (slot % len as u64) as usize;
                        match self.ipds.checker.inject_bsv(s, status) {
                            // The slot already held the forced status:
                            // rotate so the fault actually changes state.
                            Some(old) if old == status => {
                                let rotated = match status {
                                    BranchStatus::Taken => BranchStatus::NotTaken,
                                    BranchStatus::NotTaken => BranchStatus::Unknown,
                                    BranchStatus::Unknown => BranchStatus::Taken,
                                };
                                self.ipds.checker.inject_bsv(s, rotated).is_some()
                            }
                            Some(_) => true,
                            None => false,
                        }
                    }
                }
                FaultMutation::MemoryBit { cell, bit } => {
                    let live = self.interp.mem.live_mutable_cells();
                    !live.is_empty() && {
                        let a = live[(cell % live.len() as u64) as usize];
                        let old = self.interp.mem.load(a);
                        self.interp.mem.tamper(a, old ^ (1i64 << bit))
                    }
                }
                FaultMutation::ImageBits(_) => unreachable!("dispatched in run()"),
            };

        let status = self.interp.run(&mut self.ipds);
        if !injected {
            // No live target at the trigger instant: the fault missed.
            return FaultOutcome::Masked;
        }
        grade_run(&self.ipds.checker, branches_at_injection, false, status)
    }
}

/// Grades a completed post-injection run: first alarm after the injection
/// wins, then runtime protocol violations, then the termination status.
fn grade_run(
    checker: &IpdsChecker<'_>,
    branches_at_injection: u64,
    counted_underflows_expected: bool,
    status: ExecStatus,
) -> FaultOutcome {
    if let Some(alarm) = checker
        .alarms()
        .iter()
        .find(|a| a.branch_seq > branches_at_injection)
    {
        return FaultOutcome::Detected {
            report: AnomalyReport::Alarm {
                pc: alarm.pc,
                branch_seq: alarm.branch_seq,
            },
            latency_branches: alarm
                .branch_seq
                .saturating_sub(branches_at_injection)
                .saturating_sub(1),
        };
    }
    if !counted_underflows_expected && checker.stats().underflows > 0 {
        return FaultOutcome::Detected {
            report: AnomalyReport::Runtime(RuntimeError::FrameStackUnderflow {
                component: "checker",
            }),
            latency_branches: checker
                .stats()
                .branches
                .saturating_sub(branches_at_injection),
        };
    }
    match status {
        ExecStatus::Exited(_) => FaultOutcome::Masked,
        status => FaultOutcome::Crashed { status },
    }
}

/// Registers the full canonical counter set (all zero) so every campaign
/// emits exactly [`FAULT_COUNTERS`] whatever the outcomes were.
fn register_fault_counters(metrics: &mut MetricsRegistry) {
    for key in FAULT_COUNTERS {
        metrics.add(key, 0);
    }
}

/// Folds one fault's outcome into the worker-local metrics. Both engines
/// record through this function, so merged telemetry is engine-independent.
fn record_fault(
    metrics: &mut MetricsRegistry,
    campaign: &FaultCampaign,
    plan: &FaultPlan,
    outcome: &FaultOutcome,
) {
    metrics.add("faults.injected", 1);
    metrics.add(
        match plan.site() {
            FaultSite::TableImage => "faults.image",
            FaultSite::CheckerState => "faults.checker",
            FaultSite::Memory => "faults.memory",
        },
        1,
    );
    match outcome {
        FaultOutcome::Detected {
            latency_branches, ..
        } => {
            metrics.add("faults.detected", 1);
            metrics.observe("faults.detect_latency_branches", *latency_branches);
        }
        FaultOutcome::Masked => {
            metrics.add("faults.masked", 1);
            if plan.site() == FaultSite::TableImage && campaign.checksum {
                metrics.add("faults.image_undetected", 1);
            }
        }
        FaultOutcome::Crashed { .. } => {
            metrics.add("faults.crashed", 1);
        }
    }
}

/// Folds per-fault outcomes (in index order) into a
/// [`FaultCampaignResult`]. Shared by both engines — same fold, same
/// latency order.
pub fn aggregate_faults(
    campaign: &FaultCampaign,
    outcomes: &[FaultOutcome],
) -> FaultCampaignResult {
    let mut result = FaultCampaignResult {
        injected: outcomes.len() as u32,
        image: 0,
        checker: 0,
        memory: 0,
        detected: 0,
        masked: 0,
        crashed: 0,
        image_undetected: 0,
        latencies: Vec::new(),
    };
    for (i, outcome) in outcomes.iter().enumerate() {
        let site = fault_site(i as u32);
        match site {
            FaultSite::TableImage => result.image += 1,
            FaultSite::CheckerState => result.checker += 1,
            FaultSite::Memory => result.memory += 1,
        }
        match outcome {
            FaultOutcome::Detected {
                latency_branches, ..
            } => {
                result.detected += 1;
                result.latencies.push(*latency_branches);
            }
            FaultOutcome::Masked => {
                result.masked += 1;
                if site == FaultSite::TableImage && campaign.checksum {
                    result.image_undetected += 1;
                }
            }
            FaultOutcome::Crashed { .. } => result.crashed += 1,
        }
    }
    result
}

/// Runs a fault campaign serially.
///
/// # Panics
///
/// Panics if the golden (clean) run faults — benign traffic must be
/// fault-free.
pub fn run_fault_campaign(
    program: &Program,
    analysis: &ProgramAnalysis,
    image: &TableImage,
    inputs: &[Input],
    campaign: &FaultCampaign,
) -> (FaultCampaignResult, MetricsRegistry) {
    run_fault_campaign_threaded(program, analysis, image, inputs, campaign, 1)
}

/// Runs a fault campaign across `threads` workers (`0`/`1` = serial, zero
/// spawned threads). Results — including the latency vector and the merged
/// metrics — are bit-identical for every thread count: faults are
/// independently seeded, outcomes merge in index order, and the fold is
/// shared with the serial path. The one exception is the pool's
/// chunk-accounting telemetry (`pool.chunks_claimed`, `pool.chunks_stolen`),
/// which describes how the scheduler carved the index space and varies with
/// thread count and timing (see `docs/PERF.md`).
///
/// # Panics
///
/// Panics if the golden (clean) run faults, or if a worker thread panics.
pub fn run_fault_campaign_threaded(
    program: &Program,
    analysis: &ProgramAnalysis,
    image: &TableImage,
    inputs: &[Input],
    campaign: &FaultCampaign,
    threads: usize,
) -> (FaultCampaignResult, MetricsRegistry) {
    let golden = GoldenRun::capture(program, inputs, campaign.limits);
    assert!(
        !matches!(golden.status, ExecStatus::Fault(_)),
        "golden run must not fault: {:?}",
        golden.status
    );
    let total = campaign.total();
    let workers = threads.max(1).min(total.max(1) as usize);

    let (outcomes, mut metrics) = if workers <= 1 {
        let mut runner = FaultRunner::new(program, analysis, image, inputs, campaign.limits);
        let mut metrics = MetricsRegistry::new();
        let mut outcomes = Vec::with_capacity(total as usize);
        for i in 0..total {
            let plan = fault_plan(campaign, golden.steps, i);
            let outcome = runner.run(campaign, &plan);
            record_fault(&mut metrics, campaign, &plan, &outcome);
            outcomes.push(outcome);
        }
        // Degenerate single-worker pool accounting, mirroring the worker
        // pool's own serial path so `pool.tasks_executed` is
        // engine-independent.
        metrics.add("pool.tasks_executed", u64::from(total));
        metrics.add("pool.chunks_claimed", u64::from(total > 0));
        metrics.add("pool.chunks_stolen", 0);
        (outcomes, metrics)
    } else {
        let (outcomes, states, pool) = ipds_parallel::map_indexed_stats(
            total,
            workers,
            |_| {
                let runner = FaultRunner::new(program, analysis, image, inputs, campaign.limits);
                (runner, MetricsRegistry::new())
            },
            |(runner, local_metrics), i| {
                let plan = fault_plan(campaign, golden.steps, i);
                let outcome = runner.run(campaign, &plan);
                record_fault(local_metrics, campaign, &plan, &outcome);
                outcome
            },
        );
        let mut metrics = MetricsRegistry::new();
        for (_, local_metrics) in &states {
            metrics.merge(local_metrics);
        }
        metrics.add("pool.tasks_executed", pool.tasks_executed);
        metrics.add("pool.chunks_claimed", pool.chunks_claimed);
        metrics.add("pool.chunks_stolen", pool.chunks_stolen);
        (outcomes, metrics)
    };
    register_fault_counters(&mut metrics);
    (aggregate_faults(campaign, &outcomes), metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipds_analysis::{analyze_program, AnalysisConfig};

    const VICTIM: &str = "fn main() -> int { int user; int req; int i; \
        user = read_int(); \
        for (i = 0; i < 6; i = i + 1) { \
          if (user == 1) { print_int(100); } \
          req = read_int(); \
          print_int(req); \
          if (user == 1) { print_int(200); } else { print_int(300); } \
        } return 0; }";

    fn setup() -> (Program, ProgramAnalysis, TableImage, Vec<Input>) {
        let p = ipds_ir::parse(VICTIM).unwrap();
        let a = analyze_program(&p, &AnalysisConfig::default());
        let image = TableImage::build(&a);
        let inputs: Vec<Input> = (0..7).map(|i| Input::Int(i % 3)).collect();
        (p, a, image, inputs)
    }

    #[test]
    fn plans_are_pure_functions_of_the_seed() {
        let c = FaultCampaign::default();
        for i in 0..12 {
            assert_eq!(fault_plan(&c, 500, i), fault_plan(&c, 500, i));
            assert_eq!(fault_plan(&c, 500, i).site(), fault_site(i));
        }
        let c2 = FaultCampaign {
            seed: c.seed + 1,
            ..c.clone()
        };
        assert_ne!(fault_plan(&c, 500, 1), fault_plan(&c2, 500, 1));
    }

    #[test]
    fn checksum_on_rejects_every_image_fault() {
        let (p, a, image, inputs) = setup();
        let c = FaultCampaign {
            flips: 16,
            seed: 7,
            checksum: true,
            limits: ExecLimits::default(),
        };
        let (r, metrics) = run_fault_campaign(&p, &a, &image, &inputs, &c);
        assert_eq!(r.injected, 48);
        assert_eq!(r.image, 16);
        assert_eq!(r.image_undetected, 0, "checksum must catch every flip");
        assert_eq!(metrics.counter("faults.image_undetected"), 0);
        // Image rejections are latency-0 detections.
        assert!(r.detected >= r.image);
        assert_eq!(r.detected as usize, r.latencies.len());
    }

    #[test]
    fn campaigns_are_bit_identical_across_thread_counts() {
        let (p, a, image, inputs) = setup();
        for checksum in [true, false] {
            let c = FaultCampaign {
                flips: 10,
                seed: 2006,
                checksum,
                limits: ExecLimits::default(),
            };
            let (serial, serial_metrics) = run_fault_campaign(&p, &a, &image, &inputs, &c);
            for threads in [2, 4, 8] {
                let (par, par_metrics) =
                    run_fault_campaign_threaded(&p, &a, &image, &inputs, &c, threads);
                assert_eq!(serial, par, "checksum={checksum} threads={threads}");
                // Chunk accounting describes the scheduler, not the
                // computation: it is the one telemetry pair allowed to vary
                // with thread count. Everything else must merge identically.
                let stable = |m: &MetricsRegistry| -> Vec<_> {
                    m.counters()
                        .filter(|(k, _)| *k != "pool.chunks_claimed" && *k != "pool.chunks_stolen")
                        .collect()
                };
                assert_eq!(
                    stable(&serial_metrics),
                    stable(&par_metrics),
                    "deterministic metrics must merge identically"
                );
                assert!(par_metrics.counter("pool.chunks_claimed") > 0);
            }
        }
    }

    #[test]
    fn outcome_counts_are_consistent() {
        let (p, a, image, inputs) = setup();
        let c = FaultCampaign {
            flips: 12,
            seed: 3,
            checksum: true,
            limits: ExecLimits::default(),
        };
        let (r, metrics) = run_fault_campaign(&p, &a, &image, &inputs, &c);
        assert_eq!(r.detected + r.masked + r.crashed, r.injected);
        assert_eq!(r.image + r.checker + r.memory, r.injected);
        assert_eq!(metrics.counter("faults.injected"), u64::from(r.injected));
        assert_eq!(metrics.counter("faults.detected"), u64::from(r.detected));
        assert_eq!(metrics.counter("faults.masked"), u64::from(r.masked));
        assert_eq!(metrics.counter("faults.crashed"), u64::from(r.crashed));
        // This victim's control flow is user-driven: some live faults must
        // be caught, so the latency histogram exists.
        assert!(r.detected > 0);
        let h = metrics
            .histogram("faults.detect_latency_branches")
            .expect("latency histogram");
        assert_eq!(h.count, u64::from(r.detected));
    }

    #[test]
    fn checksum_off_measures_runtime_detection() {
        let (p, a, image, inputs) = setup();
        let c = FaultCampaign {
            flips: 12,
            seed: 11,
            checksum: false,
            limits: ExecLimits::default(),
        };
        let (r, _) = run_fault_campaign(&p, &a, &image, &inputs, &c);
        // Restamped images load (unless structurally broken), so not every
        // image fault can be a load-time rejection — the masked/detected
        // split comes from the runtime.
        assert_eq!(r.image_undetected, 0, "only counted in checksum-on mode");
        assert_eq!(r.detected + r.masked + r.crashed, r.injected);
    }

    #[test]
    fn canonical_counters_are_always_emitted() {
        let (p, a, image, inputs) = setup();
        let c = FaultCampaign {
            flips: 2,
            seed: 1,
            checksum: true,
            limits: ExecLimits::default(),
        };
        let (_, metrics) = run_fault_campaign(&p, &a, &image, &inputs, &c);
        let emitted: Vec<&str> = metrics.counters().map(|(k, _)| k).collect();
        let mut canonical: Vec<&str> = FAULT_COUNTERS.to_vec();
        canonical.extend_from_slice(ipds_parallel::POOL_COUNTERS);
        canonical.sort_unstable();
        assert_eq!(emitted, canonical);
    }
}
