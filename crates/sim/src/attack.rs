//! Simulated memory-tampering attacks and detection campaigns (§6).
//!
//! The paper's protocol: attack each server program 100 times
//! *independently*, each attack tampering one (randomly selected) memory
//! location at one instant — format-string bugs give an arbitrary-location
//! write, buffer overflows are restricted to stack data. For each attack it
//! is recorded whether the tampering changed the program's control flow at
//! all, and whether the IPDS detected it. IPDS is not designed to catch
//! tamperings that leave control flow unchanged.
//!
//! [`run_attack`] reproduces one such experiment: a golden (clean) run
//! records the branch trace; the attack run replays the same inputs, tampers
//! at the trigger step, feeds every committed branch through the
//! [`IpdsChecker`], and diffs traces.

use ipds_analysis::ProgramAnalysis;
use ipds_ir::Program;
use ipds_runtime::IpdsChecker;
use ipds_telemetry::{AttackRecord, EventSink, MetricsRegistry, NullSink, NULL_SINK};

use crate::interp::{ExecLimits, ExecStatus, Input, Interp, InterpSnapshot};
use crate::observer::{BranchTrace, IpdsObserver, Tee};
use crate::rng::StdRng;
use ipds_runtime::CheckerSnapshot;

/// Which vulnerability class the attack models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackModel {
    /// Format-string: the attacker can write an arbitrary live memory cell
    /// (globals or any active stack frame).
    FormatString,
    /// Buffer overflow: the attacker can write stack cells only (the
    /// paper's refined single-location variant).
    BufferOverflow,
    /// Contiguous buffer overflow: the attacker smashes a run of adjacent
    /// stack cells, the shape §6 mentions real overflows take before the
    /// paper refines to single locations ("buffer overflow attacks normally
    /// tamper a continuous block of memory"). The payload is ASCII-like
    /// filler, as an overlong string would plant.
    ContiguousOverflow,
}

/// Outcome of one attack experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackOutcome {
    /// The tampering happened (a live cell existed at the trigger point).
    pub tampered: bool,
    /// The branch trace diverged from the golden run.
    pub control_flow_changed: bool,
    /// The IPDS raised at least one alarm.
    pub detected: bool,
    /// Committed branches between the first trace divergence and the first
    /// alarm (a semantic detection latency), when both happened.
    pub detection_lag_branches: Option<u64>,
    /// How the attacked run terminated.
    pub status: ExecStatus,
    /// Interpreter steps the attacked run took.
    pub steps: u64,
}

/// Aggregate results of a campaign (one bar pair of Fig. 7).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Attacks executed.
    pub attacks: u32,
    /// Attacks whose tampering changed control flow.
    pub cf_changed: u32,
    /// Attacks detected by the IPDS.
    pub detected: u32,
    /// Mean semantic detection lag in branches (over detected attacks).
    pub mean_lag_branches: f64,
}

impl CampaignResult {
    /// Fraction of attacks that changed control flow (Fig. 7's first bar).
    pub fn cf_changed_rate(&self) -> f64 {
        self.cf_changed as f64 / self.attacks.max(1) as f64
    }

    /// Fraction of attacks detected (Fig. 7's second bar).
    pub fn detected_rate(&self) -> f64 {
        self.detected as f64 / self.attacks.max(1) as f64
    }

    /// Detection rate among control-flow-changing attacks (the paper's
    /// 59.3% headline).
    pub fn detected_given_cf(&self) -> f64 {
        self.detected as f64 / self.cf_changed.max(1) as f64
    }
}

/// A campaign specification.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Number of independent attacks (the paper uses 100).
    pub attacks: u32,
    /// RNG seed (attacks are derived deterministically from it).
    pub seed: u64,
    /// Vulnerability model.
    pub model: AttackModel,
    /// Execution limits per run.
    pub limits: ExecLimits,
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign {
            attacks: 100,
            seed: 0x1bd5,
            model: AttackModel::FormatString,
            limits: ExecLimits::default(),
        }
    }
}

/// Artifacts of the clean reference execution: the golden branch trace plus
/// run metadata. Captured once per (program, input script) and shared —
/// immutably — by every attack and every worker thread of a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenRun {
    /// `(pc, direction)` pairs in commit order.
    pub trace: Vec<(u64, bool)>,
    /// Interpreter steps the clean run took.
    pub steps: u64,
    /// How the clean run terminated.
    pub status: ExecStatus,
}

impl GoldenRun {
    /// Runs the golden (clean) execution and records its branch trace.
    pub fn capture(program: &Program, inputs: &[Input], limits: ExecLimits) -> GoldenRun {
        let mut interp = Interp::new(program, inputs.to_vec(), limits);
        let mut trace = BranchTrace::with_cap(0);
        let status = interp.run(&mut trace);
        GoldenRun {
            trace: trace.trace,
            steps: interp.steps(),
            status,
        }
    }
}

/// Periodic snapshots of the clean execution: interpreter state, checker
/// state and committed-branch count captured every few thousand steps of
/// one golden run. Every attack's pre-trigger phase re-executes a prefix of
/// exactly that run, so a campaign captures one `WarmStart` and each attack
/// restores the nearest snapshot at-or-before its trigger step — a few
/// memcpys — instead of re-interpreting the whole prefix. Snapshots are
/// immutable after capture and shared by reference across worker threads.
///
/// Warm starts are transparent to campaign *results*: restoring a snapshot
/// and replaying the remaining steps commits the same state, branch trace
/// suffix and checker verdicts as interpreting from scratch (the prefix is
/// deterministic), and [`first_divergence_from`] accounts for the elided
/// golden prefix when diffing traces. They are **not** transparent to
/// per-branch telemetry — the elided prefix emits no `BranchRecord`s — so
/// engines only enable them for sinks that report
/// [`EventSink::wants_branch_stream`]` == false`.
#[derive(Debug)]
pub struct WarmStart {
    snaps: Vec<WarmSnap>,
    /// Steps the full clean run took (the fast-forward outcome's step
    /// count).
    final_steps: u64,
    /// How the clean run terminated.
    final_status: ExecStatus,
    /// True if the clean run raised no checker alarm — the precondition for
    /// reconvergence fast-forwarding (a clean suffix implies an alarm-free
    /// suffix). Always true in practice: the checker is zero-false-positive
    /// on benign traces.
    clean: bool,
}

#[derive(Debug)]
struct WarmSnap {
    /// Interpreter steps executed at capture time.
    steps: u64,
    /// Golden branches committed at capture time (the trace-diff offset).
    trace_len: usize,
    interp: InterpSnapshot,
    checker: CheckerSnapshot,
    /// Bitmask over cell addresses: every cell the golden run reads from
    /// this snapshot to the end of the run (instruction loads and builtin
    /// string/copy reads). Reconvergence only requires memory equality on
    /// these cells — a tampered value the remaining run never looks at
    /// cannot change its behaviour.
    suffix_reads: Vec<u64>,
}

/// Observer recording every cell address read by execution (instruction
/// loads plus builtin-level reads) as a bitmask. Teed alongside the golden
/// capture run to build the per-snapshot suffix read-sets.
#[derive(Debug, Default)]
struct ReadSetRecorder {
    bits: Vec<u64>,
}

impl ReadSetRecorder {
    /// Hands the accumulated segment mask to the caller and starts the next
    /// segment empty.
    fn take_segment(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.bits)
    }
}

impl crate::observer::ExecObserver for ReadSetRecorder {
    const WANTS_MEM: bool = true;
    const WANTS_BUILTIN_READS: bool = true;

    fn on_mem(&mut self, _pc: u64, addr: usize, store: bool) {
        if !store {
            let w = addr / 64;
            if w >= self.bits.len() {
                self.bits.resize(w + 1, 0);
            }
            self.bits[w] |= 1u64 << (addr % 64);
        }
    }
}

/// In-place union of two address bitmasks (`dst |= src`).
fn or_mask_into(dst: &mut Vec<u64>, src: &[u64]) {
    if src.len() > dst.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

impl WarmStart {
    /// Snapshot cadence: aim for ~128 snapshots across the run, but never
    /// denser than every 64 steps (below that restoring costs about as much
    /// as the replay it saves).
    fn interval(golden_steps: u64) -> u64 {
        (golden_steps / 128).max(64)
    }

    /// Re-runs the golden execution once, capturing a snapshot every
    /// [`WarmStart::interval`] steps (including step 0). The checker is
    /// driven exactly as [`AttackRunner::run`] drives it, so restored state
    /// is indistinguishable from a cold prefix execution.
    pub fn capture(
        program: &Program,
        analysis: &ProgramAnalysis,
        inputs: &[Input],
        golden_steps: u64,
        limits: ExecLimits,
    ) -> WarmStart {
        let main = program.main().expect("program must define `main`").id;
        let interval = WarmStart::interval(golden_steps);
        let mut interp = Interp::new(program, inputs.to_vec(), limits);
        let mut ipds = IpdsObserver::new(IpdsChecker::new(analysis));
        ipds.checker.on_call(main);
        let mut trace = BranchTrace::with_cap(0);
        let mut reads = ReadSetRecorder::default();
        let mut snaps = Vec::new();
        let mut segments = Vec::new();
        while *interp.status() == ExecStatus::Running {
            snaps.push(WarmSnap {
                steps: interp.steps(),
                trace_len: trace.trace.len(),
                interp: interp.snapshot(),
                checker: ipds.checker.snapshot(),
                suffix_reads: Vec::new(),
            });
            let mut inner = Tee::new(&mut trace, &mut ipds);
            let mut tee = Tee::new(&mut inner, &mut reads);
            interp.run_steps(interval, &mut tee);
            // Cells read between this snapshot and the next (or the end).
            segments.push(reads.take_segment());
        }
        debug_assert_eq!(
            interp.steps(),
            golden_steps,
            "capture must replay the golden run"
        );
        // Each snapshot's mask must cover every read from it to the END of
        // the run (reconvergence skips the whole tail), so accumulate the
        // per-segment sets back to front.
        let mut suffix = Vec::new();
        for (snap, seg) in snaps.iter_mut().zip(segments).rev() {
            or_mask_into(&mut suffix, &seg);
            snap.suffix_reads = suffix.clone();
        }
        WarmStart {
            snaps,
            final_steps: interp.steps(),
            final_status: interp.status().clone(),
            clean: !ipds.checker.detected(),
        }
    }

    /// The snapshot with the greatest step count ≤ `trigger_step`. Always
    /// exists: capture starts with a step-0 snapshot.
    fn nearest(&self, trigger_step: u64) -> &WarmSnap {
        let i = self.snaps.partition_point(|s| s.steps <= trigger_step);
        &self.snaps[i - 1]
    }

    /// The first snapshot strictly after `steps`, if any.
    fn next_after(&self, steps: u64) -> Option<&WarmSnap> {
        self.snaps
            .get(self.snaps.partition_point(|s| s.steps <= steps))
    }

    /// Number of snapshots held.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// True if no snapshots were captured (never happens for a program that
    /// runs at least one step).
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }
}

/// Runs the golden (clean) execution and returns its branch trace and step
/// count. Tuple-flavored convenience over [`GoldenRun::capture`].
pub fn golden_run(
    program: &Program,
    inputs: &[Input],
    limits: ExecLimits,
) -> (Vec<(u64, bool)>, u64, ExecStatus) {
    let g = GoldenRun::capture(program, inputs, limits);
    (g.trace, g.steps, g.status)
}

/// Reusable attack executor: one interpreter arena, one checker, one trace
/// buffer, recycled across every attack it runs (§6's 100-attack protocol
/// allocates its scratch once instead of per attack). Each worker thread of
/// the parallel engine owns one `AttackRunner`; the borrowed program,
/// analysis and golden trace are shared by all of them.
#[derive(Debug)]
pub struct AttackRunner<'a, S: EventSink = NullSink> {
    inputs: &'a [Input],
    golden: &'a [(u64, bool)],
    main: ipds_ir::FuncId,
    interp: Interp<'a>,
    ipds: IpdsObserver<'a, S>,
    trace: BranchTrace,
    warm: Option<&'a WarmStart>,
}

impl<'a> AttackRunner<'a, NullSink> {
    /// Builds a runner over shared campaign artifacts, with telemetry
    /// disabled.
    ///
    /// # Panics
    ///
    /// Panics if the program has no `main`.
    pub fn new(
        program: &'a Program,
        analysis: &'a ProgramAnalysis,
        inputs: &'a [Input],
        golden: &'a [(u64, bool)],
        limits: ExecLimits,
    ) -> AttackRunner<'a, NullSink> {
        AttackRunner::with_sink(program, analysis, inputs, golden, limits, &NULL_SINK)
    }
}

impl<'a, S: EventSink> AttackRunner<'a, S> {
    /// Builds a runner that reports every checked branch to `sink`.
    ///
    /// # Panics
    ///
    /// Panics if the program has no `main`.
    pub fn with_sink(
        program: &'a Program,
        analysis: &'a ProgramAnalysis,
        inputs: &'a [Input],
        golden: &'a [(u64, bool)],
        limits: ExecLimits,
        sink: &'a S,
    ) -> AttackRunner<'a, S> {
        AttackRunner {
            inputs,
            golden,
            main: program.main().expect("program must define `main`").id,
            interp: Interp::new(program, inputs.to_vec(), limits),
            ipds: IpdsObserver::with_sink(IpdsChecker::new(analysis), sink),
            trace: BranchTrace::with_cap(0),
            warm: None,
        }
    }

    /// Attaches golden-run snapshots: subsequent [`AttackRunner::run`] calls
    /// restore the nearest snapshot at-or-before the trigger instead of
    /// re-interpreting the clean prefix. The caller is responsible for only
    /// doing this when the sink tolerates the elided per-branch records
    /// (see [`WarmStart`]).
    pub fn with_warm_start(mut self, warm: &'a WarmStart) -> Self {
        self.warm = Some(warm);
        self
    }

    /// High-water mark of the wrapped checker's BSV frame pool (the
    /// `checker.bsv_pool_high_water` telemetry value; see
    /// [`ipds_runtime::BSV_POOL_CAP`]).
    pub fn bsv_pool_high_water(&self) -> usize {
        self.ipds.checker.bsv_pool_high_water()
    }

    /// Runs one attack: execute to `trigger_step`, tamper cell(s) chosen by
    /// `rng` under `model`, continue with IPDS checking, and compare against
    /// the golden trace. All scratch state is reset (not reallocated) first.
    pub fn run(
        &mut self,
        trigger_step: u64,
        model: AttackModel,
        rng: &mut StdRng,
    ) -> AttackOutcome {
        self.trace.clear();

        // Phase 1: reach the trigger point. With warm start the clean
        // prefix comes from a golden snapshot (a few memcpys) plus a short
        // replay; the trace buffer then holds only the suffix from the
        // snapshot on, and `trace_offset` golden branches are implied.
        let trace_offset = if let Some(warm) = self.warm {
            let snap = warm.nearest(trigger_step);
            self.interp.restore(&snap.interp);
            self.ipds.checker.restore(&snap.checker);
            let mut tee = Tee::new(&mut self.trace, &mut self.ipds);
            self.interp.run_steps(trigger_step - snap.steps, &mut tee);
            snap.trace_len
        } else {
            self.interp.reset(self.inputs.iter().cloned());
            self.ipds.checker.reset();
            // Mirror the interpreter's startup convention: main's frame is
            // active.
            self.ipds.checker.on_call(self.main);
            let mut tee = Tee::new(&mut self.trace, &mut self.ipds);
            self.interp.run_steps(trigger_step, &mut tee);
            0
        };

        // Phase 2: tamper.
        let candidates = match model {
            AttackModel::FormatString => self.interp.mem.live_mutable_cells(),
            AttackModel::BufferOverflow | AttackModel::ContiguousOverflow => {
                self.interp.mem.live_stack_cells()
            }
        };
        let tampered = if self.interp.status() == &ExecStatus::Running && !candidates.is_empty() {
            if model == AttackModel::ContiguousOverflow {
                // Smash a run of 2–8 adjacent cells with string-like bytes.
                let start = rng.gen_range(0..candidates.len());
                let len = rng.gen_range(2..=8usize);
                let mut any = false;
                for i in 0..len.min(candidates.len() - start) {
                    let cell = candidates[start + i];
                    any |= self.interp.mem.tamper(cell, rng.gen_range(0x20..0x7f));
                }
                any
            } else {
                let cell = candidates[rng.gen_range(0..candidates.len())];
                let old = self.interp.mem.load(cell);
                // Values drawn from a small, plausible-data distribution:
                // flipping flags and IDs is the non-control-data attack of
                // interest. A wild 64-bit value would be caught by trivial
                // means. Tampering always *changes* the cell (writing back
                // the same value is not an attack).
                let mut value = old;
                while value == old {
                    value = match rng.gen_range(0..4) {
                        0 => rng.gen_range(-2..=2),
                        1 => rng.gen_range(0..=1),
                        2 => old ^ (1i64 << rng.gen_range(0..8)),
                        _ => rng.gen_range(-1000..=1000),
                    };
                }
                self.interp.mem.tamper(cell, value)
            }
        } else {
            false
        };

        // Phase 3: run to completion under checking. With warm start the
        // run pauses at each golden snapshot boundary and checks whether it
        // has *reconverged* with the clean run: trace still a golden prefix
        // (same count, same entries — which pins the whole instruction
        // path, including calls/returns, and therefore the checker state)
        // and interpreter state equal to the snapshot on everything the
        // remaining golden run can observe — the activation stack with its
        // registers, the input stream, and every memory cell the suffix
        // will ever read (`WarmSnap::suffix_reads`; a tampered value the
        // tail never looks at cannot steer it). From such a point the
        // remainder commits the golden suffix verbatim: no divergence, no
        // alarms (the clean run has none), terminal status, exit value and
        // step count already known — so the tail is skipped outright. Once
        // the trace diverges no reconvergence shortcut exists and the run
        // simply plays out.
        let status = 'run: {
            let Some(warm) = self.warm.filter(|w| w.clean) else {
                let mut tee = Tee::new(&mut self.trace, &mut self.ipds);
                break 'run self.interp.run(&mut tee);
            };
            let mut matched = 0usize;
            loop {
                let Some(snap) = warm.next_after(self.interp.steps()) else {
                    let mut tee = Tee::new(&mut self.trace, &mut self.ipds);
                    break 'run self.interp.run(&mut tee);
                };
                {
                    let mut tee = Tee::new(&mut self.trace, &mut self.ipds);
                    self.interp
                        .run_steps(snap.steps - self.interp.steps(), &mut tee);
                }
                if *self.interp.status() != ExecStatus::Running {
                    break 'run self.interp.status().clone();
                }
                // Verify the branches committed since the last checkpoint
                // against the golden trace (each entry is compared once).
                let new = &self.trace.trace[matched..];
                let gstart = trace_offset + matched;
                let still_prefix = gstart + new.len() <= self.golden.len()
                    && *new == self.golden[gstart..gstart + new.len()];
                if !still_prefix {
                    // Diverged: play the rest out under checking.
                    let mut tee = Tee::new(&mut self.trace, &mut self.ipds);
                    break 'run self.interp.run(&mut tee);
                }
                matched = self.trace.trace.len();
                if trace_offset + matched == snap.trace_len
                    && self
                        .interp
                        .state_eq_masked(&snap.interp, &snap.suffix_reads)
                {
                    // Reconverged with the clean run: the tail is golden.
                    return AttackOutcome {
                        tampered,
                        control_flow_changed: false,
                        detected: self.ipds.checker.detected(),
                        detection_lag_branches: None,
                        status: warm.final_status.clone(),
                        steps: warm.final_steps,
                    };
                }
            }
        };

        // Diff against the golden trace (offset past the elided prefix).
        let divergence = first_divergence_from(self.golden, &self.trace.trace, trace_offset);
        let control_flow_changed = divergence.is_some();
        let detected = self.ipds.checker.detected();
        let detection_lag_branches = match (divergence, self.ipds.checker.alarms().first()) {
            (Some(div), Some(alarm)) => Some(alarm.branch_seq.saturating_sub(div as u64 + 1)),
            _ => None,
        };

        // Zero-false-positive sanity: an alarm without control-flow change
        // is impossible (identical traces drive identical checker state).
        debug_assert!(
            !detected || control_flow_changed,
            "alarm fired on an unchanged trace"
        );

        AttackOutcome {
            tampered,
            control_flow_changed,
            detected,
            detection_lag_branches,
            status,
            steps: self.interp.steps(),
        }
    }
}

/// Runs one attack with freshly allocated scratch. Convenience over
/// [`AttackRunner`] for one-off experiments; campaigns reuse a runner.
#[allow(clippy::too_many_arguments)] // one experiment = one parameterized protocol step
pub fn run_attack(
    program: &Program,
    analysis: &ProgramAnalysis,
    inputs: &[Input],
    golden: &[(u64, bool)],
    trigger_step: u64,
    model: AttackModel,
    rng: &mut StdRng,
    limits: ExecLimits,
) -> AttackOutcome {
    AttackRunner::new(program, analysis, inputs, golden, limits).run(trigger_step, model, rng)
}

/// First index at which `golden` and the attacked trace differ, where the
/// attacked trace is known to start with `golden[..offset]` (elided by a
/// warm start) followed by `tail`. Returns an index into the full traces;
/// `offset == 0` is the plain whole-trace diff.
fn first_divergence_from(
    golden: &[(u64, bool)],
    tail: &[(u64, bool)],
    offset: usize,
) -> Option<usize> {
    let golden_tail = &golden[offset.min(golden.len())..];
    let n = golden_tail.len().min(tail.len());
    for i in 0..n {
        if golden_tail[i] != tail[i] {
            return Some(offset + i);
        }
    }
    if golden_tail.len() != tail.len() {
        Some(offset + n)
    } else {
        None
    }
}

/// The derived RNG seed of attack `i` (the campaign seed split by a
/// splitmix-style multiplicative stream).
pub fn attack_seed(campaign: &Campaign, i: u32) -> u64 {
    campaign.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1))
}

/// Derives attack `i`'s RNG stream and trigger step: the per-attack seeding
/// protocol, shared verbatim by the serial and parallel engines so their
/// results are bit-identical.
pub fn attack_rng(campaign: &Campaign, golden_steps: u64, i: u32) -> (StdRng, u64) {
    let mut rng = StdRng::seed_from_u64(attack_seed(campaign, i));
    // Trigger anywhere in the first 95% of the run so the attack has room
    // to manifest.
    let hi = (golden_steps.saturating_mul(95) / 100).max(2);
    let trigger = rng.gen_range(1..hi);
    (rng, trigger)
}

/// Reports one completed attack to the sink and the worker-local metrics
/// registry. Both engines call this per attack, so the folded telemetry is
/// identical whichever engine ran.
pub(crate) fn record_attack<S: EventSink>(
    sink: &S,
    metrics: &mut MetricsRegistry,
    campaign: &Campaign,
    index: u32,
    trigger_step: u64,
    outcome: &AttackOutcome,
) {
    metrics.add("attacks", 1);
    metrics.observe("attack_steps", outcome.steps);
    if outcome.tampered {
        metrics.add("attacks_tampered", 1);
    }
    if outcome.control_flow_changed {
        metrics.add("attacks_cf_changed", 1);
    }
    if outcome.detected {
        metrics.add("attacks_detected", 1);
    }
    if let Some(lag) = outcome.detection_lag_branches {
        metrics.observe("detection_lag_branches", lag);
    }
    sink.on_attack(&AttackRecord {
        index,
        seed: attack_seed(campaign, index),
        trigger_step,
        steps: outcome.steps,
        tampered: outcome.tampered,
        control_flow_changed: outcome.control_flow_changed,
        detected: outcome.detected,
    });
}

/// Folds per-attack outcomes (in seed order) into a [`CampaignResult`].
/// Both engines aggregate through this one function — same fold, same
/// floating-point association order, bit-identical means.
pub fn aggregate(attacks: u32, outcomes: &[AttackOutcome]) -> CampaignResult {
    let mut result = CampaignResult {
        attacks,
        cf_changed: 0,
        detected: 0,
        mean_lag_branches: 0.0,
    };
    let mut lags = Vec::new();
    for outcome in outcomes {
        if outcome.control_flow_changed {
            result.cf_changed += 1;
        }
        if outcome.detected {
            result.detected += 1;
        }
        if let Some(lag) = outcome.detection_lag_branches {
            lags.push(lag as f64);
        }
    }
    if !lags.is_empty() {
        result.mean_lag_branches = lags.iter().sum::<f64>() / lags.len() as f64;
    }
    result
}

/// Runs a full campaign against one program with the given input script.
pub fn run_campaign(
    program: &Program,
    analysis: &ProgramAnalysis,
    inputs: &[Input],
    campaign: &Campaign,
) -> CampaignResult {
    let golden = GoldenRun::capture(program, inputs, campaign.limits);
    run_campaign_with_golden(program, analysis, inputs, &golden, campaign)
}

/// Runs a full campaign against a precomputed golden run (the artifact the
/// benchmark layer caches per (program, input script)).
///
/// # Panics
///
/// Panics if the golden run faulted — benign traffic must be fault-free.
pub fn run_campaign_with_golden(
    program: &Program,
    analysis: &ProgramAnalysis,
    inputs: &[Input],
    golden: &GoldenRun,
    campaign: &Campaign,
) -> CampaignResult {
    run_campaign_instrumented(program, analysis, inputs, golden, campaign, &NULL_SINK).0
}

/// The serial campaign engine with telemetry attached: every checked branch
/// goes to `sink` and the per-attack metrics (counters plus the step-count
/// histogram) come back in a [`MetricsRegistry`]. With [`NullSink`] the
/// event path compiles away and the result is identical to
/// [`run_campaign_with_golden`].
///
/// # Panics
///
/// Panics if the golden run faulted — benign traffic must be fault-free.
pub fn run_campaign_instrumented<S: EventSink>(
    program: &Program,
    analysis: &ProgramAnalysis,
    inputs: &[Input],
    golden: &GoldenRun,
    campaign: &Campaign,
    sink: &S,
) -> (CampaignResult, MetricsRegistry) {
    run_campaign_instrumented_warm(program, analysis, inputs, golden, campaign, sink, None)
}

/// [`run_campaign_instrumented`] over a precomputed [`WarmStart`], so a
/// driver running many campaigns against the same artifacts (the scaling
/// sweep, the ablation grid) captures the golden snapshots once instead of
/// once per campaign. `warm.is_none()` captures on demand exactly as
/// before; either way the warm path is subject to the same gating (detail
/// sinks and single-attack campaigns run cold), so results stay
/// bit-identical with and without a precomputed warm start.
///
/// # Panics
///
/// Panics if the golden run faulted — benign traffic must be fault-free.
pub fn run_campaign_instrumented_warm<S: EventSink>(
    program: &Program,
    analysis: &ProgramAnalysis,
    inputs: &[Input],
    golden: &GoldenRun,
    campaign: &Campaign,
    sink: &S,
    warm: Option<&WarmStart>,
) -> (CampaignResult, MetricsRegistry) {
    assert!(
        !matches!(golden.status, ExecStatus::Fault(_)),
        "golden run must not fault: {:?}",
        golden.status
    );
    // One golden-snapshot set amortized over the whole campaign — skipped
    // for detail sinks (which need every prefix branch record) and for
    // single-attack campaigns (capture costs about one clean run).
    let use_warm = !sink.wants_branch_stream() && campaign.attacks > 1;
    let owned = (use_warm && warm.is_none())
        .then(|| WarmStart::capture(program, analysis, inputs, golden.steps, campaign.limits));
    let warm = if use_warm {
        warm.or(owned.as_ref())
    } else {
        None
    };
    let mut runner = AttackRunner::with_sink(
        program,
        analysis,
        inputs,
        &golden.trace,
        campaign.limits,
        sink,
    );
    if let Some(warm) = warm {
        runner = runner.with_warm_start(warm);
    }
    let mut metrics = MetricsRegistry::new();
    let mut outcomes = Vec::with_capacity(campaign.attacks as usize);
    for i in 0..campaign.attacks {
        let (mut rng, trigger) = attack_rng(campaign, golden.steps, i);
        let outcome = runner.run(trigger, campaign.model, &mut rng);
        record_attack(sink, &mut metrics, campaign, i, trigger, &outcome);
        outcomes.push(outcome);
    }
    // Mirror the worker pool's degenerate single-worker accounting (one
    // worker, one chunk, nothing stolen) so the deterministic telemetry
    // keys match the threaded engine bit for bit.
    metrics.add("pool.tasks_executed", u64::from(campaign.attacks));
    metrics.add("pool.chunks_claimed", u64::from(campaign.attacks > 0));
    metrics.add("pool.chunks_stolen", 0);
    metrics.add(
        "checker.bsv_pool_high_water",
        runner.bsv_pool_high_water() as u64,
    );
    (aggregate(campaign.attacks, &outcomes), metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipds_analysis::{analyze_program, AnalysisConfig};

    /// The Figure-1 privilege-escalation victim: correlated `user` checks
    /// with input in between.
    const VICTIM: &str = "fn main() -> int { int user; int req; \
        user = read_int(); \
        if (user == 1) { print_int(100); } \
        req = read_int(); \
        print_int(req); \
        if (user == 1) { print_int(200); } else { print_int(300); } \
        return 0; }";

    fn setup(src: &str) -> (Program, ProgramAnalysis) {
        let p = ipds_ir::parse(src).unwrap();
        let a = analyze_program(&p, &AnalysisConfig::default());
        (p, a)
    }

    #[test]
    fn golden_run_never_alarms() {
        let (p, a) = setup(VICTIM);
        let inputs = vec![Input::Int(0), Input::Int(7)];
        let (golden, _, status) = golden_run(&p, &inputs, ExecLimits::default());
        assert!(matches!(status, ExecStatus::Exited(_)));
        assert_eq!(golden.len(), 2);
        // Replay through the checker manually: no alarms.
        let mut interp = Interp::new(&p, inputs, ExecLimits::default());
        let mut obs = IpdsObserver::new(IpdsChecker::new(&a));
        obs.checker.on_call(p.main().unwrap().id);
        interp.run(&mut obs);
        assert!(!obs.checker.detected());
    }

    #[test]
    fn targeted_tamper_is_detected() {
        // Deterministically tamper `user` between the two checks: the
        // second check flips direction ⇒ alarm.
        let (p, a) = setup(VICTIM);
        let inputs = vec![Input::Int(0), Input::Int(7)];
        let (golden, _, _) = golden_run(&p, &inputs, ExecLimits::default());

        let mut interp = Interp::new(&p, inputs, ExecLimits::default());
        let mut ipds = IpdsObserver::new(IpdsChecker::new(&a));
        ipds.checker.on_call(p.main().unwrap().id);
        let mut trace = BranchTrace::with_cap(0);

        // Run until the first branch committed (user == 1, not taken).
        loop {
            let done = {
                let mut tee = Tee::new(&mut trace, &mut ipds);
                interp.step(&mut tee);
                !trace.trace.is_empty() || interp.status() != &ExecStatus::Running
            };
            if done {
                break;
            }
        }
        // Tamper user (frame 0, local 0) to 1 — privilege escalation.
        let addr = interp.mem.addr_of(0, ipds_ir::VarId::local(0));
        assert!(interp.mem.tamper(addr, 1));
        {
            let mut tee = Tee::new(&mut trace, &mut ipds);
            interp.run(&mut tee);
        }
        assert!(ipds.checker.detected(), "the flipped check must alarm");
        assert_ne!(trace.trace, golden);
    }

    #[test]
    fn campaign_statistics_are_consistent() {
        let (p, a) = setup(VICTIM);
        let inputs = vec![Input::Int(0), Input::Int(7)];
        let c = Campaign {
            attacks: 50,
            seed: 42,
            model: AttackModel::FormatString,
            limits: ExecLimits::default(),
        };
        let r = run_campaign(&p, &a, &inputs, &c);
        assert_eq!(r.attacks, 50);
        assert!(r.detected <= r.cf_changed, "detected ⊆ cf-changed: {r:?}");
        assert!(r.cf_changed <= r.attacks);
        // This victim's control flow is entirely user-driven: some attacks
        // must both land and be detected.
        assert!(r.detected > 0, "{r:?}");
    }

    #[test]
    fn warm_start_matches_cold_execution_per_attack() {
        // Run the same attacks cold and warm-started and require identical
        // outcomes — divergence index arithmetic, detection lag, steps and
        // status all go through the elided-prefix path.
        let (p, a) = setup(VICTIM);
        let inputs = vec![Input::Int(1), Input::Int(3)];
        let limits = ExecLimits::default();
        let golden = GoldenRun::capture(&p, &inputs, limits);
        let warm = WarmStart::capture(&p, &a, &inputs, golden.steps, limits);
        assert!(!warm.is_empty());
        for model in [
            AttackModel::FormatString,
            AttackModel::BufferOverflow,
            AttackModel::ContiguousOverflow,
        ] {
            let c = Campaign {
                attacks: 30,
                seed: 2006,
                model,
                limits,
            };
            let mut cold = AttackRunner::new(&p, &a, &inputs, &golden.trace, limits);
            let mut warmed =
                AttackRunner::new(&p, &a, &inputs, &golden.trace, limits).with_warm_start(&warm);
            for i in 0..c.attacks {
                let (mut rng_c, trigger) = attack_rng(&c, golden.steps, i);
                let (mut rng_w, _) = attack_rng(&c, golden.steps, i);
                let a_cold = cold.run(trigger, c.model, &mut rng_c);
                let a_warm = warmed.run(trigger, c.model, &mut rng_w);
                assert_eq!(a_cold, a_warm, "{model:?} attack {i} trigger {trigger}");
            }
        }
    }

    #[test]
    fn warm_snapshots_cover_every_trigger() {
        // Trigger steps right on, before and after snapshot boundaries all
        // restore a snapshot at-or-before the trigger.
        let (p, a) = setup(VICTIM);
        let inputs = vec![Input::Int(0), Input::Int(7)];
        let limits = ExecLimits::default();
        let golden = GoldenRun::capture(&p, &inputs, limits);
        let warm = WarmStart::capture(&p, &a, &inputs, golden.steps, limits);
        for trigger in 1..golden.steps {
            let snap = warm.nearest(trigger);
            assert!(snap.steps <= trigger, "trigger {trigger}");
        }
    }

    #[test]
    fn campaigns_are_deterministic() {
        let (p, a) = setup(VICTIM);
        let inputs = vec![Input::Int(1), Input::Int(7)];
        let c = Campaign {
            attacks: 25,
            seed: 7,
            model: AttackModel::BufferOverflow,
            limits: ExecLimits::default(),
        };
        let r1 = run_campaign(&p, &a, &inputs, &c);
        let r2 = run_campaign(&p, &a, &inputs, &c);
        assert_eq!(r1, r2);
    }

    #[test]
    fn stack_model_restricts_targets() {
        // A program whose decisions live in a global: stack-only tampering
        // must detect strictly less than arbitrary tampering.
        let src = "int mode; fn main() -> int { int i; mode = read_int(); \
            for (i = 0; i < 8; i = i + 1) { \
              if (mode == 1) { print_int(1); } else { print_int(2); } \
            } return 0; }";
        let (p, a) = setup(src);
        let inputs = vec![Input::Int(0)];
        let mk = |model| Campaign {
            attacks: 60,
            seed: 11,
            model,
            limits: ExecLimits::default(),
        };
        let fs = run_campaign(&p, &a, &inputs, &mk(AttackModel::FormatString));
        let bo = run_campaign(&p, &a, &inputs, &mk(AttackModel::BufferOverflow));
        assert!(
            fs.detected >= bo.detected,
            "format-string reaches the global, overflow does not: {fs:?} vs {bo:?}"
        );
    }
}
