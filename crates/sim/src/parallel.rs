//! Deterministic parallel campaign engine.
//!
//! A campaign is embarrassingly parallel: every attack is seeded
//! independently (`campaign.seed ^ splitmix_constant * (i + 1)`), runs
//! against the same immutable artifacts (program, analysis, inputs, golden
//! trace), and contributes one [`AttackOutcome`]. The engine shards the
//! attack indices over the persistent [`ipds_parallel`] worker pool — the
//! threads are spawned once per process and parked between campaigns —
//! where each worker owns one reusable
//! [`AttackRunner`] arena. Outcomes are tagged with their attack index,
//! merged back into seed order, and folded through the same
//! [`aggregate`](crate::attack::aggregate) function the serial engine uses,
//! so the [`CampaignResult`] is **bit-identical** (including the `f64` lag
//! mean, which is sensitive to summation order) to
//! [`run_campaign`](crate::attack::run_campaign) for any thread count.
//!
//! Work distribution is dynamic (an atomic cursor over the index space)
//! because attack durations vary wildly — a tamper that sends the victim
//! into a budget-exhausting loop costs orders of magnitude more than one
//! that crashes it immediately. The sharding itself lives in the shared
//! [`ipds_parallel`] pool (the compiler side fans per-function analysis
//! over the same engine); this module supplies the per-worker
//! [`AttackRunner`] arenas and the seed-order fold.

use ipds_analysis::ProgramAnalysis;
use ipds_ir::Program;
use ipds_telemetry::{EventSink, MetricsRegistry, NULL_SINK};

pub use ipds_parallel::default_threads;

use crate::attack::{
    aggregate, attack_rng, record_attack, AttackRunner, Campaign, CampaignResult, GoldenRun,
    WarmStart,
};
use crate::interp::{ExecStatus, Input};

/// Runs a campaign across `threads` workers. `threads == 0` or `1` selects
/// the serial engine (zero spawned threads, identical results either way).
pub fn run_campaign_threaded(
    program: &Program,
    analysis: &ProgramAnalysis,
    inputs: &[Input],
    campaign: &Campaign,
    threads: usize,
) -> CampaignResult {
    let golden = GoldenRun::capture(program, inputs, campaign.limits);
    run_campaign_threaded_with_golden(program, analysis, inputs, &golden, campaign, threads)
}

/// Threaded campaign over a precomputed golden run (shared immutably by all
/// workers; the benchmark layer caches it per (program, input script)).
///
/// # Panics
///
/// Panics if the golden run faulted, or if a worker thread panics.
pub fn run_campaign_threaded_with_golden(
    program: &Program,
    analysis: &ProgramAnalysis,
    inputs: &[Input],
    golden: &GoldenRun,
    campaign: &Campaign,
    threads: usize,
) -> CampaignResult {
    run_campaign_threaded_instrumented(
        program, analysis, inputs, golden, campaign, threads, &NULL_SINK,
    )
    .0
}

/// The threaded campaign engine with telemetry attached.
///
/// `sink` is shared by every worker (hence [`EventSink`]'s `Sync` bound and
/// `&self` hooks); each worker additionally owns a private
/// [`MetricsRegistry`] folded into the returned one after the join. All
/// telemetry aggregation commutes, so both the [`CampaignResult`] *and* the
/// merged registry (and any [`CountingSink`](ipds_telemetry::CountingSink)
/// snapshot) are bit-identical for every thread count — with one documented
/// exception: the pool's chunk-accounting counters (`pool.chunks_claimed`,
/// `pool.chunks_stolen`) describe how the scheduler happened to carve the
/// index space and legitimately vary with thread count and timing. See
/// `docs/PERF.md`.
///
/// # Panics
///
/// Panics if the golden run faulted, or if a worker thread panics.
pub fn run_campaign_threaded_instrumented<S: EventSink>(
    program: &Program,
    analysis: &ProgramAnalysis,
    inputs: &[Input],
    golden: &GoldenRun,
    campaign: &Campaign,
    threads: usize,
    sink: &S,
) -> (CampaignResult, MetricsRegistry) {
    run_campaign_threaded_instrumented_warm(
        program, analysis, inputs, golden, campaign, threads, sink, None,
    )
}

/// [`run_campaign_threaded_instrumented`] over a precomputed [`WarmStart`],
/// so a driver running many campaigns against the same artifacts (the
/// scaling sweep, the ablation grid) captures the golden snapshots once
/// instead of once per campaign. `warm.is_none()` captures on demand
/// exactly as before; either way the warm path is subject to the same
/// gating as the serial engine (detail sinks and single-attack campaigns
/// run cold), so results stay bit-identical with and without a precomputed
/// warm start, at every thread count.
///
/// # Panics
///
/// Panics if the golden run faulted, or if a worker thread panics.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_threaded_instrumented_warm<S: EventSink>(
    program: &Program,
    analysis: &ProgramAnalysis,
    inputs: &[Input],
    golden: &GoldenRun,
    campaign: &Campaign,
    threads: usize,
    sink: &S,
    warm: Option<&WarmStart>,
) -> (CampaignResult, MetricsRegistry) {
    assert!(
        !matches!(golden.status, ExecStatus::Fault(_)),
        "golden run must not fault: {:?}",
        golden.status
    );
    // The pool sheds workers below its per-worker work floor; campaigns
    // that would dispatch to a single worker take the serial engine
    // directly so both engines share one degenerate path.
    let workers = ipds_parallel::effective_workers(campaign.attacks, threads);
    if workers <= 1 {
        return crate::attack::run_campaign_instrumented_warm(
            program, analysis, inputs, golden, campaign, sink, warm,
        );
    }

    // One golden-snapshot set, captured (or taken precomputed) by the
    // coordinator and shared immutably by every worker (same gating as the
    // serial engine, so both engines elide exactly the same prefixes).
    let use_warm = !sink.wants_branch_stream() && campaign.attacks > 1;
    let owned = (use_warm && warm.is_none())
        .then(|| WarmStart::capture(program, analysis, inputs, golden.steps, campaign.limits));
    let warm = if use_warm {
        warm.or(owned.as_ref())
    } else {
        None
    };

    // Shard attack indices over the shared persistent pool; each worker
    // owns one reusable runner arena plus a private metrics registry. The
    // pool merges outcomes back into seed order, so the fold below is
    // exactly the serial engine's.
    let (outcomes, states, pool) = ipds_parallel::map_indexed_stats(
        campaign.attacks,
        workers,
        |_| {
            let mut runner = AttackRunner::with_sink(
                program,
                analysis,
                inputs,
                &golden.trace,
                campaign.limits,
                sink,
            );
            if let Some(warm) = warm {
                runner = runner.with_warm_start(warm);
            }
            (runner, MetricsRegistry::new())
        },
        |(runner, local_metrics), i| {
            let (mut rng, trigger) = attack_rng(campaign, golden.steps, i);
            let outcome = runner.run(trigger, campaign.model, &mut rng);
            record_attack(sink, local_metrics, campaign, i, trigger, &outcome);
            outcome
        },
    );
    let mut metrics = MetricsRegistry::new();
    for (_, local_metrics) in &states {
        metrics.merge(local_metrics);
    }
    metrics.add("pool.tasks_executed", pool.tasks_executed);
    metrics.add("pool.chunks_claimed", pool.chunks_claimed);
    metrics.add("pool.chunks_stolen", pool.chunks_stolen);
    // The BSV-pool high water is a max, and a max over per-worker maxima
    // equals the serial engine's whole-campaign max, so this stays
    // bit-identical across thread counts.
    let high_water = states
        .iter()
        .map(|(runner, _)| runner.bsv_pool_high_water())
        .max()
        .unwrap_or(0);
    metrics.add("checker.bsv_pool_high_water", high_water as u64);
    (aggregate(campaign.attacks, &outcomes), metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{run_campaign, AttackModel};
    use crate::interp::ExecLimits;
    use ipds_analysis::{analyze_program, AnalysisConfig};

    const VICTIM: &str = "fn main() -> int { int user; int req; int i; \
        user = read_int(); \
        for (i = 0; i < 6; i = i + 1) { \
          if (user == 1) { print_int(100); } \
          req = read_int(); \
          print_int(req); \
          if (user == 1) { print_int(200); } else { print_int(300); } \
        } return 0; }";

    fn setup() -> (Program, ProgramAnalysis, Vec<Input>) {
        let p = ipds_ir::parse(VICTIM).unwrap();
        let a = analyze_program(&p, &AnalysisConfig::default());
        let inputs: Vec<Input> = (0..7).map(|i| Input::Int(i % 3)).collect();
        (p, a, inputs)
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let (p, a, inputs) = setup();
        for model in [AttackModel::FormatString, AttackModel::ContiguousOverflow] {
            let c = Campaign {
                attacks: 40,
                seed: 99,
                model,
                limits: ExecLimits::default(),
            };
            let serial = run_campaign(&p, &a, &inputs, &c);
            for threads in [2, 3, 4, 7] {
                let par = run_campaign_threaded(&p, &a, &inputs, &c, threads);
                assert_eq!(serial, par, "{model:?} with {threads} threads");
                assert_eq!(
                    serial.mean_lag_branches.to_bits(),
                    par.mean_lag_branches.to_bits(),
                    "{model:?} lag mean must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn more_threads_than_attacks_is_fine() {
        let (p, a, inputs) = setup();
        let c = Campaign {
            attacks: 3,
            seed: 5,
            model: AttackModel::BufferOverflow,
            limits: ExecLimits::default(),
        };
        let serial = run_campaign(&p, &a, &inputs, &c);
        let par = run_campaign_threaded(&p, &a, &inputs, &c, 16);
        assert_eq!(serial, par);
    }

    #[test]
    fn zero_and_one_thread_take_the_serial_path() {
        let (p, a, inputs) = setup();
        let c = Campaign {
            attacks: 10,
            seed: 1,
            model: AttackModel::FormatString,
            limits: ExecLimits::default(),
        };
        assert_eq!(
            run_campaign_threaded(&p, &a, &inputs, &c, 0),
            run_campaign_threaded(&p, &a, &inputs, &c, 1),
        );
    }

    #[test]
    fn default_threads_is_sane() {
        let t = default_threads();
        assert!((1..=8).contains(&t));
    }
}
