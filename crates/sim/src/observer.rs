//! Execution observers: how the interpreter feeds the IPDS and the timing
//! model.

use ipds_analysis::BranchStatus;
use ipds_ir::FuncId;
use ipds_runtime::IpdsChecker;
use ipds_telemetry::{BranchRecord, EventSink, Expectation, NullSink, NULL_SINK};

/// Maps the analysis-side expected status onto the telemetry mirror type.
pub fn expectation_of(status: BranchStatus) -> Expectation {
    match status {
        BranchStatus::Taken => Expectation::Taken,
        BranchStatus::NotTaken => Expectation::NotTaken,
        BranchStatus::Unknown => Expectation::Unknown,
    }
}

/// Events a consumer of the execution stream can react to.
///
/// Default implementations ignore everything, so observers implement only
/// what they need. The interpreter calls these in commit order.
pub trait ExecObserver {
    /// Whether this observer consumes [`ExecObserver::on_inst`]. The
    /// interpreter skips the per-step PC computation *and* the call for
    /// observers that leave this `false` (the default) — an observer that
    /// overrides `on_inst` must set it to `true` or it will never be
    /// called from the interpreter's hot loop.
    const WANTS_INST: bool = false;
    /// Whether this observer consumes [`ExecObserver::on_mem`]; same
    /// contract as [`ExecObserver::WANTS_INST`].
    const WANTS_MEM: bool = false;
    /// Whether this observer additionally wants the *builtin-level* memory
    /// reads (`print_str`/`strcmp`/`strlen`/`atoi` string walks, the
    /// `memcpy` source) reported through [`ExecObserver::on_mem`]. Kept
    /// separate from [`ExecObserver::WANTS_MEM`] so read-set capture (the
    /// warm-start engine's reconvergence masks) can opt in without
    /// perturbing observers — like the timing model — calibrated to the
    /// instruction-level access stream.
    const WANTS_BUILTIN_READS: bool = false;

    /// An instruction (of any kind) committed at `pc`.
    fn on_inst(&mut self, pc: u64) {
        let _ = pc;
    }
    /// A data memory access committed (`store == true` for writes).
    fn on_mem(&mut self, pc: u64, addr: usize, store: bool) {
        let _ = (pc, addr, store);
    }
    /// A conditional branch committed with direction `dir`.
    fn on_branch(&mut self, pc: u64, dir: bool) {
        let _ = (pc, dir);
    }
    /// Control entered `func`.
    fn on_call(&mut self, func: FuncId) {
        let _ = func;
    }
    /// Control returned from the current function.
    fn on_return(&mut self) {}
}

/// An observer that ignores everything (baseline runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl ExecObserver for NullObserver {}

/// Adapts the functional [`IpdsChecker`] to the observer interface.
///
/// This is the wiring of Fig. 6: every committed branch is sent to the IPDS;
/// calls and returns push/pop table frames. The observer additionally
/// forwards one [`BranchRecord`] per committed branch to an
/// [`EventSink`] — with the default [`NullSink`] every hook monomorphizes
/// to an empty inlined body, so the uninstrumented path costs nothing.
#[derive(Debug)]
pub struct IpdsObserver<'a, S: EventSink = NullSink> {
    /// The wrapped checker (exposed for result inspection).
    pub checker: IpdsChecker<'a>,
    sink: &'a S,
}

impl<'a> IpdsObserver<'a, NullSink> {
    /// Wraps a checker with telemetry disabled.
    pub fn new(checker: IpdsChecker<'a>) -> IpdsObserver<'a, NullSink> {
        IpdsObserver {
            checker,
            sink: &NULL_SINK,
        }
    }
}

impl<'a, S: EventSink> IpdsObserver<'a, S> {
    /// Wraps a checker, reporting every checked branch to `sink`.
    pub fn with_sink(checker: IpdsChecker<'a>, sink: &'a S) -> IpdsObserver<'a, S> {
        IpdsObserver { checker, sink }
    }
}

impl<S: EventSink> ExecObserver for IpdsObserver<'_, S> {
    fn on_branch(&mut self, pc: u64, dir: bool) {
        // The pre-verify BSV probe is only paid for detail sinks (JSONL);
        // counting sinks get everything else from the outcome.
        let expected = if self.sink.wants_branch_details() {
            self.checker.expected_status(pc).map(expectation_of)
        } else {
            None
        };
        let out = self.checker.on_branch(pc, dir);
        let alarm_cause = if out.alarm {
            self.checker
                .alarms()
                .last()
                .map(|a| expectation_of(a.expected))
        } else {
            None
        };
        self.sink.on_branch(&BranchRecord {
            seq: self.checker.stats().branches,
            pc,
            taken: dir,
            expected,
            verified: out.verified,
            alarm: out.alarm,
            alarm_cause,
            bat_actions: out.bat_entries,
            bsv_transitions: out.bsv_transitions,
            table_accesses: out.table_accesses,
        });
    }

    fn on_call(&mut self, func: FuncId) {
        self.checker.on_call(func);
    }

    fn on_return(&mut self) {
        // The interpreter keeps call/return balanced structurally; an Err
        // here can only come from injected state corruption, which the
        // checker already counted in `stats().underflows`.
        let _ = self.checker.on_return();
    }
}

/// Fans one event stream out to two observers.
#[derive(Debug)]
pub struct Tee<'a, A, B> {
    /// First receiver.
    pub a: &'a mut A,
    /// Second receiver.
    pub b: &'a mut B,
}

impl<'a, A: ExecObserver, B: ExecObserver> Tee<'a, A, B> {
    /// Creates a tee over two observers.
    pub fn new(a: &'a mut A, b: &'a mut B) -> Tee<'a, A, B> {
        Tee { a, b }
    }
}

impl<A: ExecObserver, B: ExecObserver> ExecObserver for Tee<'_, A, B> {
    const WANTS_INST: bool = A::WANTS_INST || B::WANTS_INST;
    const WANTS_MEM: bool = A::WANTS_MEM || B::WANTS_MEM;
    const WANTS_BUILTIN_READS: bool = A::WANTS_BUILTIN_READS || B::WANTS_BUILTIN_READS;

    fn on_inst(&mut self, pc: u64) {
        self.a.on_inst(pc);
        self.b.on_inst(pc);
    }
    fn on_mem(&mut self, pc: u64, addr: usize, store: bool) {
        self.a.on_mem(pc, addr, store);
        self.b.on_mem(pc, addr, store);
    }
    fn on_branch(&mut self, pc: u64, dir: bool) {
        self.a.on_branch(pc, dir);
        self.b.on_branch(pc, dir);
    }
    fn on_call(&mut self, func: FuncId) {
        self.a.on_call(func);
        self.b.on_call(func);
    }
    fn on_return(&mut self) {
        self.a.on_return();
        self.b.on_return();
    }
}

/// Records the committed branch trace (for control-flow diffing).
#[derive(Debug, Default, Clone)]
pub struct BranchTrace {
    /// `(pc, direction)` pairs in commit order, capped at `cap`.
    pub trace: Vec<(u64, bool)>,
    /// Maximum entries kept (0 = unlimited).
    pub cap: usize,
}

impl BranchTrace {
    /// Creates a trace recorder keeping at most `cap` entries (0 =
    /// unlimited).
    pub fn with_cap(cap: usize) -> BranchTrace {
        BranchTrace {
            trace: Vec::new(),
            cap,
        }
    }

    /// Empties the recorded trace, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.trace.clear();
    }
}

impl ExecObserver for BranchTrace {
    fn on_branch(&mut self, pc: u64, dir: bool) {
        if self.cap == 0 || self.trace.len() < self.cap {
            self.trace.push((pc, dir));
        }
    }
}
