//! In-repo seeded PRNG: SplitMix64 seeding a xoshiro256** generator.
//!
//! The attack campaigns and traffic generators need a fast, *reproducible*
//! random stream with no platform or dependency drift. This module replaces
//! the external `rand` crate (the workspace builds with no network access)
//! with the well-known xoshiro256** generator of Blackman & Vigna, seeded
//! through SplitMix64 exactly as its authors recommend. The [`StdRng`] name
//! is kept so call sites read the same as before the swap.
//!
//! The per-attack seeding protocol used by campaigns —
//! `seed ^ (0x9e3779b97f4a7c15 * (i + 1))` — is unchanged; only the stream
//! drawn from each per-attack seed differs from the old `rand::StdRng`
//! (ChaCha12) stream. EXPERIMENTS.md records the recalibrated numbers.

/// SplitMix64: a tiny 64-bit generator used to expand one seed word into
/// the xoshiro state. Also usable on its own for cheap hashing-style
/// streams.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — the workhorse generator. Named `StdRng` so the call
/// sites that used `rand::rngs::StdRng` read unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seeds the generator from a single word via SplitMix64 (the
    /// reference seeding procedure; also what `rand`'s `seed_from_u64`
    /// contract promises: same seed ⇒ same stream, forever).
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = SplitMix64::new(seed);
        let mut s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        if s == [0, 0, 0, 0] {
            // All-zero is the one forbidden xoshiro state.
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        StdRng { s }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw below `span` (span > 0) via the widening-multiply
    /// method. Bias is below 2⁻⁶⁴·span — irrelevant at campaign spans.
    #[inline]
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform value from an integer range, `rand`-style:
    /// `rng.gen_range(0..10)` or `rng.gen_range(1..=6)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 high bits → uniform double in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// Ranges an integer can be drawn from (the two std range shapes).
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $ty {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $ty
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn known_answer_locks_the_stream() {
        // Pin the exact stream so an accidental algorithm change (which
        // would silently shift every experiment number) fails loudly.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xe220_a839_7b1d_cdaf);
        let mut r = StdRng::seed_from_u64(0);
        let first = r.next_u64();
        let second = r.next_u64();
        let mut r2 = StdRng::seed_from_u64(0);
        assert_eq!(first, r2.next_u64());
        assert_eq!(second, r2.next_u64());
        assert_ne!(first, second);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(3u32..=9);
            assert!((3..=9).contains(&w));
            let b = rng.gen_range(0..26u8);
            assert!(b < 26);
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        let mut hi = false;
        let mut lo = false;
        for _ in 0..500 {
            match rng.gen_range(-2i64..=2) {
                -2 => lo = true,
                2 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi, "inclusive endpoints reachable");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
