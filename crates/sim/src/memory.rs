//! Flat cell memory with contiguous stack frames.
//!
//! Every variable occupies a contiguous run of 64-bit cells. Globals are
//! laid out once at startup; each function activation pushes a frame holding
//! its parameters and locals back-to-back. Because frames are contiguous,
//! writing past the end of a buffer clobbers the next variable — the memory
//! model a buffer-overflow attack needs.

use ipds_ir::{Function, Program, VarId, VarKind};

/// Base address of the globals segment (cell 0 stays reserved as "null").
pub const GLOBAL_BASE: usize = 16;

/// One active stack frame's layout. Plain `Copy` data — the per-variable
/// offsets live in the per-function layout table shared by all activations
/// of a function, so pushing a frame allocates nothing and snapshotting the
/// frame stack is a memcpy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameLayout {
    /// Owning function index.
    pub func: u32,
    /// First cell of the frame.
    pub base: usize,
    /// Total frame size in cells.
    pub size: usize,
}

/// Per-function frame layout, computed once at startup.
#[derive(Debug, Clone)]
struct FuncLayout {
    /// Per-variable offsets from the frame base (indexed by local `VarId`
    /// index).
    var_offsets: Vec<usize>,
    /// Total frame size in cells.
    size: usize,
}

/// A point-in-time copy of the mutable memory state (cells + frame stack);
/// see [`Memory::snapshot`].
#[derive(Debug, Clone, Default)]
pub struct MemSnapshot {
    cells: Vec<i64>,
    frames: Vec<FrameLayout>,
}

/// The simulated memory.
#[derive(Debug, Clone)]
pub struct Memory {
    cells: Vec<i64>,
    global_offsets: Vec<usize>,
    stack_base: usize,
    frames: Vec<FrameLayout>,
    func_layouts: Vec<FuncLayout>,
    /// Cells that are read-only (string literals etc.); enforced against
    /// program stores, exempt from tampering per the machine model.
    readonly_from_to: Vec<(usize, usize)>,
    /// Snapshot of the global segment (`cells[..stack_base]`) as laid out at
    /// startup, so [`Memory::reset`] can restore pristine state without
    /// re-running layout.
    pristine: Vec<i64>,
}

impl Memory {
    /// Lays out globals and prepares an empty stack.
    pub fn new(program: &Program) -> Memory {
        let mut cells = vec![0i64; GLOBAL_BASE];
        let mut global_offsets = Vec::with_capacity(program.globals.len());
        let mut readonly = Vec::new();
        for g in &program.globals {
            let base = cells.len();
            global_offsets.push(base);
            for i in 0..g.size as usize {
                cells.push(g.init.get(i).copied().unwrap_or(0));
            }
            if g.kind == VarKind::ReadOnly {
                readonly.push((base, base + g.size as usize));
            }
        }
        let stack_base = cells.len();
        let func_layouts = program
            .functions
            .iter()
            .map(|f| {
                let mut var_offsets = Vec::with_capacity(f.vars.len());
                let mut off = 0usize;
                for v in &f.vars {
                    var_offsets.push(off);
                    off += v.size as usize;
                }
                FuncLayout {
                    var_offsets,
                    size: off,
                }
            })
            .collect();
        Memory {
            pristine: cells.clone(),
            cells,
            global_offsets,
            stack_base,
            frames: Vec::new(),
            func_layouts,
            readonly_from_to: readonly,
        }
    }

    /// Restores the memory to its just-constructed state — globals back to
    /// their initializers, stack empty — without reallocating. This is what
    /// lets one interpreter arena serve a whole attack campaign.
    pub fn reset(&mut self) {
        self.cells.truncate(self.stack_base);
        self.cells.copy_from_slice(&self.pristine);
        self.frames.clear();
    }

    /// Pushes a frame for `func`, zero-initializing its cells. Returns the
    /// frame index. Allocation-free in steady state: the layout was computed
    /// at startup and the cell vector reuses its capacity.
    pub fn push_frame(&mut self, func: &Function) -> usize {
        let base = self.cells.len();
        let size = self.func_layouts[func.id.0 as usize].size;
        self.cells.resize(base + size, 0);
        self.frames.push(FrameLayout {
            func: func.id.0,
            base,
            size,
        });
        self.frames.len() - 1
    }

    /// Captures the mutable memory state (cells + frame stack) into `snap`,
    /// reusing its allocations. Restoring with [`Memory::restore`] rewinds
    /// to exactly this point.
    pub fn snapshot_into(&self, snap: &mut MemSnapshot) {
        snap.cells.clone_from(&self.cells);
        snap.frames.clone_from(&self.frames);
    }

    /// Rewinds the mutable memory state to a previously captured
    /// [`MemSnapshot`] (taken from a `Memory` over the same program).
    pub fn restore(&mut self, snap: &MemSnapshot) {
        self.cells.clone_from(&snap.cells);
        self.frames.clone_from(&snap.frames);
    }

    /// True if the mutable memory state (cells and frame stack) equals the
    /// captured snapshot's.
    pub fn state_eq(&self, snap: &MemSnapshot) -> bool {
        self.frames == snap.frames && self.cells == snap.cells
    }

    /// Like [`Memory::state_eq`], but only requires equality on the cells
    /// set in `read_mask` (a bitmask over cell addresses, 64 per word).
    /// Cells outside the mask may hold arbitrary divergent values.
    ///
    /// The warm-start engine passes the set of cells the golden suffix will
    /// ever read: a run whose state matches on those — with an identical
    /// frame stack, so all future layout decisions and bounds checks agree —
    /// performs exactly the golden suffix regardless of what the unread
    /// cells hold. Mask bits at or beyond the current allocation are
    /// ignored: unmapped cells read as a deterministic 0 and are
    /// zero-filled on (re)allocation, identically on both sides.
    pub fn state_eq_masked(&self, snap: &MemSnapshot, read_mask: &[u64]) -> bool {
        if self.frames != snap.frames || self.cells.len() != snap.cells.len() {
            return false;
        }
        for (w, &word) in read_mask.iter().enumerate() {
            let mut m = word;
            while m != 0 {
                let addr = w * 64 + m.trailing_zeros() as usize;
                if addr >= self.cells.len() {
                    break;
                }
                if self.cells[addr] != snap.cells[addr] {
                    return false;
                }
                m &= m - 1;
            }
        }
        true
    }

    /// Pops the top frame.
    ///
    /// # Panics
    ///
    /// Panics if no frame is active.
    pub fn pop_frame(&mut self) {
        let f = self.frames.pop().expect("frame stack underflow");
        self.cells.truncate(f.base);
    }

    /// The absolute cell address of a variable as seen from frame
    /// `frame_idx` (locals resolve against that frame, globals globally).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids.
    pub fn addr_of(&self, frame_idx: usize, var: VarId) -> usize {
        if var.is_global() {
            self.global_offsets[var.index()]
        } else {
            let f = &self.frames[frame_idx];
            f.base + self.func_layouts[f.func as usize].var_offsets[var.index()]
        }
    }

    /// Loads a cell; out-of-range addresses read 0 (like unmapped memory
    /// returning junk, kept deterministic).
    pub fn load(&self, addr: usize) -> i64 {
        self.cells.get(addr).copied().unwrap_or(0)
    }

    /// Stores a cell. Returns `false` (a fault) when the address is outside
    /// the allocated space or inside a read-only segment — the simulator
    /// turns that into a crash, which is what a segfault or write-protect
    /// trap would do.
    #[must_use]
    pub fn store(&mut self, addr: usize, value: i64) -> bool {
        if addr >= self.cells.len() || addr == 0 {
            return false;
        }
        if self
            .readonly_from_to
            .iter()
            .any(|&(lo, hi)| addr >= lo && addr < hi)
        {
            return false;
        }
        self.cells[addr] = value;
        true
    }

    /// Tampering write used by the attack injector: bypasses read-only and
    /// bounds policing (the attacker model is an arbitrary memory write),
    /// but still targets allocated cells only.
    pub fn tamper(&mut self, addr: usize, value: i64) -> bool {
        if let Some(c) = self.cells.get_mut(addr) {
            *c = value;
            true
        } else {
            false
        }
    }

    /// Total allocated cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no cells are allocated (never happens in practice; globals
    /// plus the reserved null page are always present).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// First cell of the stack segment.
    pub fn stack_base(&self) -> usize {
        self.stack_base
    }

    /// Active frames, innermost last.
    pub fn frames(&self) -> &[FrameLayout] {
        &self.frames
    }

    /// True if `addr` lies in a read-only segment.
    pub fn is_readonly(&self, addr: usize) -> bool {
        self.readonly_from_to
            .iter()
            .any(|&(lo, hi)| addr >= lo && addr < hi)
    }

    /// All currently-live mutable cell addresses: globals plus active stack
    /// frames (the format-string attack's target space).
    pub fn live_mutable_cells(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (gi, &base) in self.global_offsets.iter().enumerate() {
            let glen = if gi + 1 < self.global_offsets.len() {
                self.global_offsets[gi + 1] - base
            } else {
                self.stack_base - base
            };
            for a in base..base + glen {
                if !self.is_readonly(a) {
                    out.push(a);
                }
            }
        }
        for f in &self.frames {
            out.extend(f.base..f.base + f.size);
        }
        out
    }

    /// Live stack cells only (the buffer-overflow attack's target space).
    pub fn live_stack_cells(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for f in &self.frames {
            out.extend(f.base..f.base + f.size);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> Program {
        ipds_ir::parse(
            "int g = 7; int table[3]; \
             fn f(int a) -> int { int x; int buf[4]; int y; x = a; return x; } \
             fn main() -> int { return f(5); }",
        )
        .unwrap()
    }

    #[test]
    fn globals_initialized_and_addressable() {
        let p = program();
        let m = Memory::new(&p);
        let g = m.addr_of(0, VarId::global(0));
        assert_eq!(m.load(g), 7);
        let t = m.addr_of(0, VarId::global(1));
        assert_eq!(m.load(t), 0);
        assert_eq!(t, g + 1);
    }

    #[test]
    fn frames_are_contiguous_and_overflow_clobbers_neighbor() {
        let p = program();
        let f = p.function_by_name("f").unwrap();
        let mut m = Memory::new(&p);
        let fi = m.push_frame(f);
        // Layout: a(1), x(1), buf(4), y(1).
        let buf = m.addr_of(fi, VarId::local(2));
        let y = m.addr_of(fi, VarId::local(3));
        assert_eq!(y, buf + 4, "y must sit right after buf");
        // Write one past the end of buf: hits y.
        assert!(m.store(buf + 4, 99));
        assert_eq!(m.load(y), 99);
    }

    #[test]
    fn pop_frame_releases_cells() {
        let p = program();
        let f = p.function_by_name("f").unwrap();
        let mut m = Memory::new(&p);
        let before = m.len();
        m.push_frame(f);
        assert!(m.len() > before);
        m.pop_frame();
        assert_eq!(m.len(), before);
    }

    #[test]
    fn store_faults_are_reported() {
        let p = program();
        let mut m = Memory::new(&p);
        assert!(!m.store(0, 1), "null write faults");
        assert!(!m.store(1_000_000, 1), "wild write faults");
        assert!(m.tamper(GLOBAL_BASE, 42), "tamper within bounds works");
        assert!(!m.tamper(1_000_000, 1), "tamper out of bounds fails");
    }

    #[test]
    fn readonly_strings_resist_stores_but_not_policy() {
        let p =
            ipds_ir::parse("fn main() -> int { int x; x = strlen(\"abc\"); return x; }").unwrap();
        let m = Memory::new(&p);
        // Find the read-only segment.
        let ro = (0..m.len()).find(|&a| m.is_readonly(a)).expect("ro cells");
        let mut m2 = m.clone();
        assert!(!m2.store(ro, 1), "program store to read-only faults");
    }

    #[test]
    fn reset_restores_pristine_state() {
        let p = program();
        let f = p.function_by_name("f").unwrap();
        let mut m = Memory::new(&p);
        let baseline = m.clone();
        let fi = m.push_frame(f);
        assert!(m.store(m.addr_of(fi, VarId::local(0)), 5));
        assert!(m.tamper(m.addr_of(0, VarId::global(0)), 999));
        m.reset();
        assert_eq!(m.len(), baseline.len());
        assert_eq!(m.frames().len(), 0);
        assert_eq!(m.load(m.addr_of(0, VarId::global(0))), 7, "global restored");
        for a in 0..m.len() {
            assert_eq!(m.load(a), baseline.load(a), "cell {a}");
        }
    }

    #[test]
    fn live_cells_track_frames() {
        let p = program();
        let f = p.function_by_name("f").unwrap();
        let mut m = Memory::new(&p);
        let before_stack = m.live_stack_cells().len();
        assert_eq!(before_stack, 0);
        m.push_frame(f);
        assert_eq!(m.live_stack_cells().len(), 7);
        assert!(m.live_mutable_cells().len() >= 7 + 4, "globals + frame");
    }
}
