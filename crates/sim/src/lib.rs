//! # ipds-sim — execution substrate: interpreter, attacks, timing
//!
//! The paper evaluated IPDS in two simulators: Bochs (whole-system, for the
//! attack/detection experiments) and SimpleScalar (cycle-level, for the
//! performance experiments). This crate plays both roles for our IR:
//!
//! * [`memory`] — a flat cell memory with stack frames laid out
//!   contiguously, so out-of-bounds writes clobber neighbouring variables
//!   exactly like a real stack smash;
//! * [`interp`] — a step-able interpreter emitting execution events
//!   (instructions, memory accesses, branches, calls) to pluggable
//!   [`observer`]s;
//! * [`attack`] — the §6 experiment protocol: golden run, single-location
//!   memory tampering at a chosen instant (format-string = any live cell,
//!   buffer-overflow = stack cells), control-flow diffing and detection
//!   measurement over seeded campaigns;
//! * [`parallel`] — a scoped-thread worker pool running campaign attacks
//!   concurrently with results bit-identical to the serial path (attacks
//!   are independently seeded; outcomes merge in seed order);
//! * [`rng`] — the in-repo splitmix64/xoshiro256** generator behind every
//!   seeded protocol (no external `rand` dependency);
//! * [`pipeline`] — a simplified superscalar timing model with the Table 1
//!   caches, 2-level branch predictor and the IPDS request queue /
//!   spill-fill costs, producing the Fig. 9 normalized-performance numbers
//!   and the mean detection latency.

pub mod attack;
pub mod interp;
pub mod memory;
pub mod observer;
pub mod parallel;
pub mod pipeline;
pub mod rng;

pub use attack::{AttackModel, AttackOutcome, AttackRunner, Campaign, CampaignResult, GoldenRun};
pub use interp::{ExecLimits, ExecStatus, Input, Interp};
pub use memory::Memory;
pub use observer::{ExecObserver, IpdsObserver, NullObserver};
pub use parallel::{default_threads, run_campaign_threaded};
pub use pipeline::{PerfReport, TimingModel};
pub use rng::{SplitMix64, StdRng};
