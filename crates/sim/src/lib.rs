//! # ipds-sim — execution substrate: interpreter, attacks, timing
//!
//! The paper evaluated IPDS in two simulators: Bochs (whole-system, for the
//! attack/detection experiments) and SimpleScalar (cycle-level, for the
//! performance experiments). This crate plays both roles for our IR:
//!
//! * [`memory`] — a flat cell memory with stack frames laid out
//!   contiguously, so out-of-bounds writes clobber neighbouring variables
//!   exactly like a real stack smash;
//! * [`interp`] — a step-able interpreter emitting execution events
//!   (instructions, memory accesses, branches, calls) to pluggable
//!   [`observer`]s;
//! * [`attack`] — the §6 experiment protocol: golden run, single-location
//!   memory tampering at a chosen instant (format-string = any live cell,
//!   buffer-overflow = stack cells), control-flow diffing and detection
//!   measurement over seeded campaigns;
//! * [`pipeline`] — a simplified superscalar timing model with the Table 1
//!   caches, 2-level branch predictor and the IPDS request queue /
//!   spill-fill costs, producing the Fig. 9 normalized-performance numbers
//!   and the mean detection latency.

pub mod attack;
pub mod interp;
pub mod memory;
pub mod observer;
pub mod pipeline;

pub use attack::{AttackModel, AttackOutcome, Campaign, CampaignResult};
pub use interp::{ExecLimits, ExecStatus, Input, Interp};
pub use memory::Memory;
pub use observer::{ExecObserver, IpdsObserver, NullObserver};
pub use pipeline::{PerfReport, TimingModel};
