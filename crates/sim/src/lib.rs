//! # ipds-sim — execution substrate: interpreter, attacks, timing
//!
//! The paper evaluated IPDS in two simulators: Bochs (whole-system, for the
//! attack/detection experiments) and SimpleScalar (cycle-level, for the
//! performance experiments). This crate plays both roles for our IR:
//!
//! * [`memory`] — a flat cell memory with stack frames laid out
//!   contiguously, so out-of-bounds writes clobber neighbouring variables
//!   exactly like a real stack smash;
//! * [`interp`] — a step-able interpreter emitting execution events
//!   (instructions, memory accesses, branches, calls) to pluggable
//!   [`observer`]s;
//! * [`attack`] — the §6 experiment protocol: golden run, single-location
//!   memory tampering at a chosen instant (format-string = any live cell,
//!   buffer-overflow = stack cells), control-flow diffing and detection
//!   measurement over seeded campaigns;
//! * [`parallel`] — campaign sharding over the persistent
//!   [`ipds_parallel`] worker pool, with results bit-identical to the
//!   serial path (attacks are independently seeded; outcomes merge in seed
//!   order);
//! * [`faults`] — a deterministic seeded fault-injection engine striking
//!   the table image, live checker state and guest memory, grading each
//!   fault detected/masked/crashed and measuring detection latency in
//!   committed branches;
//! * [`rng`] — the in-repo splitmix64/xoshiro256** generator behind every
//!   seeded protocol (no external `rand` dependency);
//! * [`pipeline`] — a simplified superscalar timing model with the Table 1
//!   caches, 2-level branch predictor and the IPDS request queue /
//!   spill-fill costs, producing the Fig. 9 normalized-performance numbers
//!   and the mean detection latency.
//!
//! Every engine also comes in an `*_instrumented` flavour threading an
//! [`EventSink`] (re-exported from [`ipds-telemetry`](ipds_telemetry))
//! through the hot path; with the default [`NullSink`] the hooks
//! monomorphize away and the uninstrumented behaviour — and performance —
//! is preserved bit-for-bit.

pub mod attack;
pub mod faults;
pub mod interp;
pub mod memory;
pub mod observer;
pub mod parallel;
pub mod pipeline;
pub mod rng;

pub use ipds_telemetry as telemetry;

pub use attack::{
    attack_seed, run_campaign_instrumented, run_campaign_instrumented_warm, AttackModel,
    AttackOutcome, AttackRunner, Campaign, CampaignResult, GoldenRun, WarmStart,
};
pub use faults::{
    fault_plan, fault_seed, fault_site, run_fault_campaign, run_fault_campaign_threaded,
    AnomalyReport, FaultCampaign, FaultCampaignResult, FaultMutation, FaultOutcome, FaultPlan,
    FaultRunner, FaultSite, FAULT_COUNTERS, FAULT_HISTOGRAMS,
};
pub use interp::{ExecLimits, ExecStatus, Input, Interp};
pub use ipds_parallel::POOL_COUNTERS;
pub use memory::Memory;
pub use observer::{expectation_of, ExecObserver, IpdsObserver, NullObserver};
pub use parallel::{
    default_threads, run_campaign_threaded, run_campaign_threaded_instrumented,
    run_campaign_threaded_instrumented_warm,
};
pub use pipeline::{PerfReport, TimingModel};
pub use rng::{SplitMix64, StdRng};
pub use telemetry::{
    CounterSnapshot, CountingSink, EventSink, JsonlSink, MetricsRegistry, NullSink,
};
