//! The IR interpreter.
//!
//! Executes a [`Program`] one instruction at a time against the flat
//! [`Memory`], emitting events to an [`ExecObserver`]. Step-level control is
//! what the attack injector needs: it runs to a chosen instant, tampers a
//! cell, and resumes.

use std::collections::VecDeque;

use ipds_ir::{
    Address, Builtin, Callee, FuncId, Function, Inst, Operand, Program, Reg, Terminator, VarId,
};

use crate::memory::{MemSnapshot, Memory};
use crate::observer::ExecObserver;

/// One element of the program's input stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Input {
    /// Consumed by `read_int()`.
    Int(i64),
    /// Consumed by `read_str(dst, max)`.
    Str(String),
}

impl From<i64> for Input {
    fn from(v: i64) -> Self {
        Input::Int(v)
    }
}

impl From<&str> for Input {
    fn from(s: &str) -> Self {
        Input::Str(s.to_string())
    }
}

/// Why execution stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecStatus {
    /// Still runnable.
    Running,
    /// `main` returned or `exit(code)` was called.
    Exited(i64),
    /// A memory fault (wild or read-only write) terminated the program.
    Fault(String),
    /// The step budget ran out (treated as a hang).
    OutOfBudget,
}

/// Execution limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum interpreted steps (instructions + terminators).
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            max_steps: 10_000_000,
            max_depth: 256,
        }
    }
}

/// Per-function PC layout: cumulative instruction offsets per block.
#[derive(Debug, Clone)]
struct PcMap {
    block_start: Vec<u64>,
}

impl PcMap {
    fn new(func: &Function) -> PcMap {
        let mut block_start = Vec::with_capacity(func.blocks.len());
        let mut off = 0u64;
        for b in &func.blocks {
            block_start.push(off);
            off += b.insts.len() as u64 + 1;
        }
        PcMap { block_start }
    }

    fn pc(&self, func: &Function, block: usize, idx: usize) -> u64 {
        func.pc_base + 4 * (self.block_start[block] + idx as u64)
    }
}

#[derive(Debug, PartialEq, Eq)]
struct Activation {
    func: u32,
    block: usize,
    idx: usize,
    regs: Vec<i64>,
    frame: usize,
    ret_dst: Option<Reg>,
}

impl Clone for Activation {
    fn clone(&self) -> Activation {
        Activation {
            func: self.func,
            block: self.block,
            idx: self.idx,
            regs: self.regs.clone(),
            frame: self.frame,
            ret_dst: self.ret_dst,
        }
    }

    // Snapshot captures clone the whole activation stack repeatedly; reusing
    // the register vectors keeps that allocation-free in steady state.
    fn clone_from(&mut self, src: &Activation) {
        self.func = src.func;
        self.block = src.block;
        self.idx = src.idx;
        self.regs.clone_from(&src.regs);
        self.frame = src.frame;
        self.ret_dst = src.ret_dst;
    }
}

/// A point-in-time copy of a *running* interpreter's mutable state (memory,
/// activation stack, remaining inputs, output, step count). Restoring one
/// via [`Interp::restore`] rewinds execution to exactly that instant — the
/// campaign warm-start engine uses mid-run golden snapshots to skip
/// re-executing the shared prefix of every attack.
#[derive(Debug, Clone, Default)]
pub struct InterpSnapshot {
    mem: MemSnapshot,
    stack: Vec<Activation>,
    inputs: VecDeque<Input>,
    output: Vec<i64>,
    steps: u64,
}

impl InterpSnapshot {
    /// The step count at which this snapshot was taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

#[inline]
fn operand_of(act: &Activation, op: Operand) -> i64 {
    match op {
        Operand::Reg(r) => act.regs[r.0 as usize],
        Operand::Imm(v) => v,
    }
}

/// Resolves an address expression to an absolute cell address.
///
/// `Err(raw)` carries the computed address when it is negative — a
/// tampered or underflowed pointer. Callers turn that into a memory
/// fault: clamping it (the old behavior) silently aliased tampered
/// pointers onto cell 0, masking exactly the corruption the IPDS
/// exists to surface.
#[inline]
fn resolve_addr(mem: &Memory, act: &Activation, addr: &Address) -> Result<usize, i64> {
    let raw = match addr {
        Address::Var(v) => return Ok(mem.addr_of(act.frame, *v)),
        Address::Element { base, index } => {
            let b = mem.addr_of(act.frame, *base);
            let i = operand_of(act, *index);
            // Deliberately unchecked against the array bound: this is
            // the buffer-overflow surface. Positive overruns walk into
            // neighboring cells; negative ones are reported via `Err`.
            (b as i64).wrapping_add(i)
        }
        Address::Ptr { reg, offset } => act.regs[reg.0 as usize].wrapping_add(*offset),
    };
    usize::try_from(raw).map_err(|_| raw)
}

/// The interpreter.
#[derive(Debug)]
pub struct Interp<'a> {
    program: &'a Program,
    /// The simulated memory (public so the attack injector can tamper).
    pub mem: Memory,
    pcs: Vec<PcMap>,
    inputs: VecDeque<Input>,
    output: Vec<i64>,
    stack: Vec<Activation>,
    status: ExecStatus,
    steps: u64,
    limits: ExecLimits,
    /// Retired register vectors, recycled by `enter` so steady-state
    /// execution (and campaign reuse via [`Interp::reset`]) allocates no
    /// per-call register storage.
    reg_pool: Vec<Vec<i64>>,
    /// Scratch buffer for call-argument evaluation in the generic step path,
    /// reused so calls allocate no per-call argv.
    arg_scratch: Vec<i64>,
}

impl<'a> Interp<'a> {
    /// Creates an interpreter poised at the entry of `main`.
    ///
    /// # Panics
    ///
    /// Panics if the program has no `main`.
    pub fn new(
        program: &'a Program,
        inputs: impl IntoIterator<Item = Input>,
        limits: ExecLimits,
    ) -> Interp<'a> {
        let pcs = program.functions.iter().map(PcMap::new).collect();
        let mut interp = Interp {
            program,
            mem: Memory::new(program),
            pcs,
            inputs: inputs.into_iter().collect(),
            output: Vec::new(),
            stack: Vec::new(),
            status: ExecStatus::Running,
            steps: 0,
            limits,
            reg_pool: Vec::new(),
            arg_scratch: Vec::new(),
        };
        let main = program.main().expect("program must define `main`");
        interp.enter(main.id, &[], None);
        interp
    }

    /// Rewinds the interpreter to the entry of `main` with a fresh input
    /// stream, reusing every allocation already made (memory image, register
    /// vectors, output buffer). Equivalent to — but much cheaper than —
    /// constructing a new `Interp`.
    pub fn reset(&mut self, inputs: impl IntoIterator<Item = Input>) {
        self.mem.reset();
        self.inputs.clear();
        self.inputs.extend(inputs);
        self.output.clear();
        for act in self.stack.drain(..) {
            self.reg_pool.push(act.regs);
        }
        self.status = ExecStatus::Running;
        self.steps = 0;
        let main = self.program.main().expect("program must define `main`");
        self.enter(main.id, &[], None);
    }

    fn func(&self, id: u32) -> &'a Function {
        &self.program.functions[id as usize]
    }

    fn enter(&mut self, func: FuncId, args: &[i64], ret_dst: Option<Reg>) {
        let f = self.func(func.0);
        let frame = self.mem.push_frame(f);
        for (i, &a) in args.iter().enumerate() {
            let addr = self.mem.addr_of(frame, VarId::local(i as u32));
            // Frame cells were just allocated; this store cannot fault.
            let ok = self.mem.store(addr, a);
            debug_assert!(ok);
        }
        let mut regs = self.reg_pool.pop().unwrap_or_default();
        regs.clear();
        regs.resize(f.next_reg as usize, 0);
        self.stack.push(Activation {
            func: func.0,
            block: f.entry.index(),
            idx: 0,
            regs,
            frame,
            ret_dst,
        });
    }

    /// The current status.
    pub fn status(&self) -> &ExecStatus {
        &self.status
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Values printed so far (`print_int`; `print_str` pushes each cell).
    pub fn output(&self) -> &[i64] {
        &self.output
    }

    /// Current call depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Captures the interpreter's mutable state into `snap`, reusing its
    /// allocations (repeated captures into the same snapshot are
    /// allocation-free in steady state). Only meaningful while the status is
    /// [`ExecStatus::Running`].
    pub fn snapshot_into(&self, snap: &mut InterpSnapshot) {
        debug_assert_eq!(self.status, ExecStatus::Running, "snapshot of a dead run");
        self.mem.snapshot_into(&mut snap.mem);
        snap.stack.clone_from(&self.stack);
        snap.inputs.clone_from(&self.inputs);
        snap.output.clone_from(&self.output);
        snap.steps = self.steps;
    }

    /// True if the interpreter's live state equals the captured snapshot's —
    /// everything future execution depends on: step count, activation
    /// stack, remaining inputs and memory. Collected output is deliberately
    /// excluded: it is append-only and never read back, so it cannot
    /// influence the remaining run. Cheapest discriminators run first.
    pub fn state_eq(&self, snap: &InterpSnapshot) -> bool {
        self.steps == snap.steps
            && self.stack == snap.stack
            && self.inputs == snap.inputs
            && self.mem.state_eq(&snap.mem)
    }

    /// Like [`Interp::state_eq`], but memory only has to match on the cells
    /// set in `read_mask` (see [`Memory::state_eq_masked`]). The activation
    /// stack — including every live register — and the remaining input
    /// stream still compare exactly.
    pub fn state_eq_masked(&self, snap: &InterpSnapshot, read_mask: &[u64]) -> bool {
        self.steps == snap.steps
            && self.stack == snap.stack
            && self.inputs == snap.inputs
            && self.mem.state_eq_masked(&snap.mem, read_mask)
    }

    /// Captures the interpreter's mutable state (see
    /// [`Interp::snapshot_into`]).
    pub fn snapshot(&self) -> InterpSnapshot {
        let mut snap = InterpSnapshot::default();
        self.snapshot_into(&mut snap);
        snap
    }

    /// Rewinds the interpreter to a previously captured [`InterpSnapshot`]
    /// (taken from an interpreter over the *same* program). Equivalent to
    /// replaying the original run's first `snap.steps()` steps, but a few
    /// memcpys instead; existing allocations are reused.
    pub fn restore(&mut self, snap: &InterpSnapshot) {
        self.mem.restore(&snap.mem);
        while self.stack.len() > snap.stack.len() {
            let act = self.stack.pop().expect("len checked");
            self.reg_pool.push(act.regs);
        }
        for (i, src) in snap.stack.iter().enumerate() {
            if let Some(dst) = self.stack.get_mut(i) {
                dst.clone_from(src);
            } else {
                let mut regs = self.reg_pool.pop().unwrap_or_default();
                regs.clone_from(&src.regs);
                self.stack.push(Activation {
                    func: src.func,
                    block: src.block,
                    idx: src.idx,
                    regs,
                    frame: src.frame,
                    ret_dst: src.ret_dst,
                });
            }
        }
        self.inputs.clone_from(&snap.inputs);
        self.output.clone_from(&snap.output);
        self.steps = snap.steps;
        self.status = ExecStatus::Running;
    }

    /// Runs until exit/fault/budget, notifying `obs`.
    pub fn run<O: ExecObserver>(&mut self, obs: &mut O) -> ExecStatus {
        self.run_steps(u64::MAX, obs)
    }

    /// Runs at most `n` further steps.
    ///
    /// Observers that want neither instruction nor memory events (the
    /// campaign hot path) take a burst dispatch loop that caches the
    /// function/block lookups [`Interp::step`] redoes per instruction;
    /// everything else runs the single-step machine. Both produce identical
    /// state, step accounting and observer event streams.
    pub fn run_steps<O: ExecObserver>(&mut self, n: u64, obs: &mut O) -> ExecStatus {
        let target = self.steps.saturating_add(n);
        if O::WANTS_INST || O::WANTS_MEM {
            while self.status == ExecStatus::Running && self.steps < target {
                self.step(obs);
            }
        } else {
            while self.status == ExecStatus::Running && self.steps < target {
                self.burst(target, obs);
                // The burst stops short of the rare ops it does not handle
                // (builtin calls, an empty stack); one generic step covers
                // them, then the next burst resumes.
                if self.status == ExecStatus::Running && self.steps < target {
                    self.step(obs);
                }
            }
        }
        self.status.clone()
    }

    /// Executes instructions, jumps, branches, direct calls and returns in a
    /// burst until it reaches `target` steps, a builtin call, or a terminal
    /// state. The function and basic-block references are resolved once per
    /// control transfer instead of once per step, which is where the
    /// single-step machine spends most of its time.
    ///
    /// Semantics mirror [`Interp::step`] exactly: identical step accounting
    /// (budget overrun consumes the step), identical fault messages and
    /// points, and observer events fired in the same order. Only valid for
    /// observers with both capability flags off — per-slot PCs are
    /// materialized solely for committed branches.
    fn burst<O: ExecObserver>(&mut self, target: u64, obs: &mut O) {
        debug_assert!(!O::WANTS_INST && !O::WANTS_MEM);
        let program = self.program;
        let Interp {
            mem,
            pcs,
            stack,
            status,
            steps,
            limits,
            reg_pool,
            ..
        } = self;
        'act: loop {
            let depth = stack.len();
            let Some(act) = stack.last_mut() else {
                return; // step() records the exit
            };
            let func = &program.functions[act.func as usize];
            let pcmap = &pcs[act.func as usize];
            loop {
                let bb = &func.blocks[act.block];
                while act.idx < bb.insts.len() {
                    if *steps >= target {
                        return;
                    }
                    let inst = &bb.insts[act.idx];
                    if let Inst::Call { callee, .. } = inst {
                        if matches!(callee, Callee::Builtin(_)) {
                            return; // step() runs the builtin
                        }
                    }
                    *steps += 1;
                    if *steps > limits.max_steps {
                        *status = ExecStatus::OutOfBudget;
                        return;
                    }
                    match inst {
                        Inst::Const { dst, value } => act.regs[dst.0 as usize] = *value,
                        Inst::BinOp { dst, op, lhs, rhs } => {
                            let a = operand_of(act, *lhs);
                            let b = operand_of(act, *rhs);
                            act.regs[dst.0 as usize] = op.eval(a, b);
                        }
                        Inst::Cmp {
                            dst,
                            pred,
                            lhs,
                            rhs,
                        } => {
                            let a = operand_of(act, *lhs);
                            let b = operand_of(act, *rhs);
                            act.regs[dst.0 as usize] = pred.eval(a, b) as i64;
                        }
                        Inst::Load { dst, addr } => match resolve_addr(mem, act, addr) {
                            Ok(a) => act.regs[dst.0 as usize] = mem.load(a),
                            Err(raw) => {
                                *status = ExecStatus::Fault(format!(
                                    "load from out-of-bounds address {raw}"
                                ));
                                return;
                            }
                        },
                        Inst::Store { addr, src } => match resolve_addr(mem, act, addr) {
                            Ok(a) => {
                                let v = operand_of(act, *src);
                                if !mem.store(a, v) {
                                    *status = ExecStatus::Fault(format!("store fault at cell {a}"));
                                    return;
                                }
                            }
                            Err(raw) => {
                                *status = ExecStatus::Fault(format!(
                                    "store to out-of-bounds address {raw}"
                                ));
                                return;
                            }
                        },
                        Inst::AddrOf { dst, base, offset } => {
                            let b = mem.addr_of(act.frame, *base);
                            let o = operand_of(act, *offset);
                            act.regs[dst.0 as usize] = (b as i64).wrapping_add(o);
                        }
                        Inst::Call { dst, callee, args } => {
                            let Callee::Direct(fid) = callee else {
                                unreachable!("builtins bail out above")
                            };
                            if depth >= limits.max_depth {
                                *status = ExecStatus::Fault("call stack overflow".into());
                                return;
                            }
                            // Inline `enter`: push the callee frame, store
                            // the arguments (frame cells were just
                            // allocated; those stores cannot fault), seed
                            // the register file from the pool.
                            let f = &program.functions[fid.0 as usize];
                            let frame = mem.push_frame(f);
                            for (i, &a) in args.iter().enumerate() {
                                let v = operand_of(act, a);
                                let addr = mem.addr_of(frame, VarId::local(i as u32));
                                let ok = mem.store(addr, v);
                                debug_assert!(ok);
                            }
                            let mut regs = reg_pool.pop().unwrap_or_default();
                            regs.clear();
                            regs.resize(f.next_reg as usize, 0);
                            act.idx += 1; // advance the caller past the call
                            let entry = f.entry.index();
                            let fid = *fid;
                            let ret_dst = *dst;
                            stack.push(Activation {
                                func: fid.0,
                                block: entry,
                                idx: 0,
                                regs,
                                frame,
                                ret_dst,
                            });
                            obs.on_call(fid);
                            continue 'act;
                        }
                        Inst::Phi { .. } => {
                            *status = ExecStatus::Fault(
                                "phi reached the simulator (deconstruct-ssa must run first)".into(),
                            );
                            return;
                        }
                    }
                    act.idx += 1;
                }
                if *steps >= target {
                    return;
                }
                *steps += 1;
                if *steps > limits.max_steps {
                    *status = ExecStatus::OutOfBudget;
                    return;
                }
                match &bb.term {
                    Terminator::Jump(t) => {
                        act.block = t.index();
                        act.idx = 0;
                    }
                    Terminator::Branch {
                        cond,
                        taken,
                        not_taken,
                    } => {
                        let pc = pcmap.pc(func, act.block, act.idx);
                        let dir = act.regs[cond.0 as usize] != 0;
                        let t = if dir { taken } else { not_taken };
                        act.block = t.index();
                        act.idx = 0;
                        obs.on_branch(pc, dir);
                    }
                    Terminator::Return(v) => {
                        let value = v.map(|op| operand_of(act, op));
                        let fin = stack.pop().expect("active frame");
                        mem.pop_frame();
                        if stack.is_empty() {
                            *status = ExecStatus::Exited(value.unwrap_or(0));
                            reg_pool.push(fin.regs);
                            return;
                        }
                        obs.on_return();
                        if let Some(dst) = fin.ret_dst {
                            let caller = stack.len() - 1;
                            stack[caller].regs[dst.0 as usize] = value.unwrap_or(0);
                        }
                        reg_pool.push(fin.regs);
                        continue 'act;
                    }
                }
            }
        }
    }

    fn fault(&mut self, msg: impl Into<String>) {
        self.status = ExecStatus::Fault(msg.into());
    }

    /// The PC of the instruction slot `(block, idx)` of `func_id`.
    #[inline]
    fn pc_of(&self, func_id: u32, block: usize, idx: usize) -> u64 {
        self.pcs[func_id as usize].pc(self.func(func_id), block, idx)
    }

    /// Converts a builtin's pointer argument into a cell address, faulting
    /// on negative (tampered) values. `None` means the fault was recorded
    /// and the builtin must bail out.
    fn addr_arg(&mut self, what: &str, v: i64) -> Option<usize> {
        match usize::try_from(v) {
            Ok(a) => Some(a),
            Err(_) => {
                self.fault(format!("{what}: out-of-bounds address {v}"));
                None
            }
        }
    }

    /// Executes one instruction or terminator.
    ///
    /// The PC of the committed slot is computed lazily: only observers whose
    /// [`ExecObserver::WANTS_INST`]/[`ExecObserver::WANTS_MEM`] capability
    /// flags ask for it (or a committed branch, which always carries its PC)
    /// pay for the layout lookup — the campaign hot path runs with both
    /// flags off.
    pub fn step<O: ExecObserver>(&mut self, obs: &mut O) {
        if self.status != ExecStatus::Running {
            return;
        }
        self.steps += 1;
        if self.steps > self.limits.max_steps {
            self.status = ExecStatus::OutOfBudget;
            return;
        }
        let Some(act_idx) = self.stack.len().checked_sub(1) else {
            self.status = ExecStatus::Exited(0);
            return;
        };
        let (func_id, block, idx) = {
            let a = &self.stack[act_idx];
            (a.func, a.block, a.idx)
        };
        let func = self.func(func_id);
        if O::WANTS_INST {
            obs.on_inst(self.pc_of(func_id, block, idx));
        }

        let bb = &func.blocks[block];
        if idx < bb.insts.len() {
            self.exec_inst(act_idx, &bb.insts[idx], (func_id, block, idx), obs);
            if self.status == ExecStatus::Running {
                // exec_inst may have pushed a new activation (call); only
                // advance the original one.
                self.stack[act_idx].idx = idx + 1;
            }
        } else {
            self.exec_terminator(act_idx, &bb.term, (func_id, block, idx), obs);
        }
    }

    fn exec_inst<O: ExecObserver>(
        &mut self,
        act_idx: usize,
        inst: &Inst,
        slot: (u32, usize, usize),
        obs: &mut O,
    ) {
        match inst {
            Inst::Const { dst, value } => {
                let act = &mut self.stack[act_idx];
                act.regs[dst.0 as usize] = *value;
            }
            Inst::BinOp { dst, op, lhs, rhs } => {
                let act = &mut self.stack[act_idx];
                let a = operand_of(act, *lhs);
                let b = operand_of(act, *rhs);
                act.regs[dst.0 as usize] = op.eval(a, b);
            }
            Inst::Cmp {
                dst,
                pred,
                lhs,
                rhs,
            } => {
                let act = &mut self.stack[act_idx];
                let a = operand_of(act, *lhs);
                let b = operand_of(act, *rhs);
                act.regs[dst.0 as usize] = pred.eval(a, b) as i64;
            }
            Inst::Load { dst, addr } => match resolve_addr(&self.mem, &self.stack[act_idx], addr) {
                Ok(a) => {
                    if O::WANTS_MEM {
                        obs.on_mem(self.pc_of(slot.0, slot.1, slot.2), a, false);
                    }
                    let act = &mut self.stack[act_idx];
                    act.regs[dst.0 as usize] = self.mem.load(a);
                }
                Err(raw) => self.fault(format!("load from out-of-bounds address {raw}")),
            },
            Inst::Store { addr, src } => {
                match resolve_addr(&self.mem, &self.stack[act_idx], addr) {
                    Ok(a) => {
                        let v = operand_of(&self.stack[act_idx], *src);
                        if O::WANTS_MEM {
                            obs.on_mem(self.pc_of(slot.0, slot.1, slot.2), a, true);
                        }
                        if !self.mem.store(a, v) {
                            self.fault(format!("store fault at cell {a}"));
                        }
                    }
                    Err(raw) => self.fault(format!("store to out-of-bounds address {raw}")),
                }
            }
            Inst::AddrOf { dst, base, offset } => {
                let b = self.mem.addr_of(self.stack[act_idx].frame, *base);
                let act = &mut self.stack[act_idx];
                let o = operand_of(act, *offset);
                act.regs[dst.0 as usize] = (b as i64).wrapping_add(o);
            }
            Inst::Call { dst, callee, args } => {
                let mut argv = std::mem::take(&mut self.arg_scratch);
                argv.clear();
                {
                    let act = &self.stack[act_idx];
                    argv.extend(args.iter().map(|a| operand_of(act, *a)));
                }
                match callee {
                    Callee::Direct(fid) => {
                        if self.stack.len() >= self.limits.max_depth {
                            self.arg_scratch = argv;
                            self.fault("call stack overflow");
                            return;
                        }
                        // step() advances the caller's idx past the call
                        // after we return; the new activation starts at its
                        // entry block independently.
                        self.enter(*fid, &argv, *dst);
                        self.arg_scratch = argv;
                        obs.on_call(*fid);
                    }
                    Callee::Builtin(b) => {
                        let pc = if O::WANTS_MEM {
                            self.pc_of(slot.0, slot.1, slot.2)
                        } else {
                            0
                        };
                        let result = self.exec_builtin(*b, &argv, pc, obs);
                        self.arg_scratch = argv;
                        if self.status != ExecStatus::Running {
                            return;
                        }
                        if let (Some(d), Some(v)) = (dst, result) {
                            self.stack[act_idx].regs[d.0 as usize] = v;
                        }
                    }
                }
            }
            // Executable programs are post-deconstruction by contract (the
            // structural verifier rejects phis); fault rather than guess a
            // predecessor.
            Inst::Phi { .. } => {
                self.fault("phi reached the simulator (deconstruct-ssa must run first)");
            }
        }
    }

    fn exec_terminator<O: ExecObserver>(
        &mut self,
        act_idx: usize,
        term: &Terminator,
        slot: (u32, usize, usize),
        obs: &mut O,
    ) {
        match term {
            Terminator::Jump(t) => {
                let act = &mut self.stack[act_idx];
                act.block = t.index();
                act.idx = 0;
            }
            Terminator::Branch {
                cond,
                taken,
                not_taken,
            } => {
                let pc = self.pc_of(slot.0, slot.1, slot.2);
                let act = &mut self.stack[act_idx];
                let dir = act.regs[cond.0 as usize] != 0;
                let target = if dir { taken } else { not_taken };
                act.block = target.index();
                act.idx = 0;
                obs.on_branch(pc, dir);
            }
            Terminator::Return(v) => {
                let value = v.map(|op| operand_of(&self.stack[act_idx], op));
                let act = self.stack.pop().expect("active frame");
                self.mem.pop_frame();
                if self.stack.is_empty() {
                    self.status = ExecStatus::Exited(value.unwrap_or(0));
                    self.reg_pool.push(act.regs);
                    return;
                }
                obs.on_return();
                if let Some(dst) = act.ret_dst {
                    let caller = self.stack.len() - 1;
                    self.stack[caller].regs[dst.0 as usize] = value.unwrap_or(0);
                }
                self.reg_pool.push(act.regs);
                // The caller's idx was already advanced past the call when
                // the call instruction executed.
            }
        }
    }

    fn read_cstr<O: ExecObserver>(
        &self,
        addr: usize,
        max: usize,
        pc: u64,
        obs: &mut O,
    ) -> Vec<i64> {
        let mut out = Vec::new();
        for i in 0..max {
            if O::WANTS_BUILTIN_READS {
                obs.on_mem(pc, addr + i, false);
            }
            let c = self.mem.load(addr + i);
            if c == 0 {
                break;
            }
            out.push(c);
        }
        out
    }

    fn exec_builtin<O: ExecObserver>(
        &mut self,
        b: Builtin,
        args: &[i64],
        pc: u64,
        obs: &mut O,
    ) -> Option<i64> {
        match b {
            Builtin::ReadInt => loop {
                match self.inputs.pop_front() {
                    Some(Input::Int(v)) => return Some(v),
                    Some(Input::Str(_)) => continue, // skip mismatched input
                    None => return Some(0),
                }
            },
            Builtin::ReadStr => {
                let dst = self.addr_arg("read_str", args[0])?;
                // A negative length reads nothing (only the NUL is written).
                let max = usize::try_from(args[1]).unwrap_or(0);
                let s = loop {
                    match self.inputs.pop_front() {
                        Some(Input::Str(s)) => break s,
                        Some(Input::Int(_)) => continue,
                        None => break String::new(),
                    }
                };
                // Unbounded against the real buffer: copies up to `max`
                // cells plus NUL. The caller passing a `max` larger than the
                // buffer is the classic overflow bug.
                let mut wrote = 0usize;
                for (i, c) in s.chars().take(max).enumerate() {
                    if O::WANTS_MEM {
                        obs.on_mem(pc, dst + i, true);
                    }
                    if !self.mem.store(dst + i, c as i64) {
                        self.fault(format!("read_str overflow fault at cell {}", dst + i));
                        return None;
                    }
                    wrote = i + 1;
                }
                if O::WANTS_MEM {
                    obs.on_mem(pc, dst + wrote, true);
                }
                if !self.mem.store(dst + wrote, 0) {
                    self.fault("read_str NUL fault");
                    return None;
                }
                Some(wrote as i64)
            }
            Builtin::PrintInt => {
                self.output.push(args[0]);
                None
            }
            Builtin::PrintStr => {
                let a = self.addr_arg("print_str", args[0])?;
                let s = self.read_cstr(a, 4096, pc, obs);
                self.output.extend(s);
                None
            }
            Builtin::StrCmp | Builtin::StrNCmp => {
                let limit = if b == Builtin::StrNCmp {
                    usize::try_from(args[2]).unwrap_or(0)
                } else {
                    4096
                };
                let lhs = self.addr_arg("strcmp", args[0])?;
                let rhs = self.addr_arg("strcmp", args[1])?;
                let a = self.read_cstr(lhs, limit, pc, obs);
                let c = self.read_cstr(rhs, limit, pc, obs);
                for i in 0..limit {
                    let x = a.get(i).copied().unwrap_or(0);
                    let y = c.get(i).copied().unwrap_or(0);
                    if x != y {
                        return Some(if x < y { -1 } else { 1 });
                    }
                    if x == 0 {
                        break;
                    }
                }
                Some(0)
            }
            Builtin::StrCpy => {
                let dst = self.addr_arg("strcpy", args[0])?;
                let from = self.addr_arg("strcpy", args[1])?;
                let src = self.read_cstr(from, 4096, pc, obs);
                for (i, &c) in src.iter().enumerate() {
                    if O::WANTS_MEM {
                        obs.on_mem(pc, dst + i, true);
                    }
                    if !self.mem.store(dst + i, c) {
                        self.fault(format!("strcpy fault at cell {}", dst + i));
                        return None;
                    }
                }
                if O::WANTS_MEM {
                    obs.on_mem(pc, dst + src.len(), true);
                }
                if !self.mem.store(dst + src.len(), 0) {
                    self.fault("strcpy NUL fault");
                }
                None
            }
            Builtin::StrLen => {
                let a = self.addr_arg("strlen", args[0])?;
                Some(self.read_cstr(a, 4096, pc, obs).len() as i64)
            }
            Builtin::Atoi => {
                let a = self.addr_arg("atoi", args[0])?;
                let s = self.read_cstr(a, 64, pc, obs);
                let text: String = s
                    .iter()
                    .map(|&c| char::from_u32(c as u32).unwrap_or('\0'))
                    .collect();
                Some(text.trim().parse::<i64>().unwrap_or(0))
            }
            Builtin::MemSet => {
                let dst = self.addr_arg("memset", args[0])?;
                let v = args[1];
                // A negative count writes nothing.
                let n = usize::try_from(args[2]).unwrap_or(0);
                for i in 0..n {
                    if O::WANTS_MEM {
                        obs.on_mem(pc, dst + i, true);
                    }
                    if !self.mem.store(dst + i, v) {
                        self.fault(format!("memset fault at cell {}", dst + i));
                        return None;
                    }
                }
                None
            }
            Builtin::MemCpy => {
                let dst = self.addr_arg("memcpy", args[0])?;
                let src = self.addr_arg("memcpy", args[1])?;
                let n = usize::try_from(args[2]).unwrap_or(0);
                for i in 0..n {
                    if O::WANTS_BUILTIN_READS {
                        obs.on_mem(pc, src + i, false);
                    }
                    let v = self.mem.load(src + i);
                    if O::WANTS_MEM {
                        obs.on_mem(pc, dst + i, true);
                    }
                    if !self.mem.store(dst + i, v) {
                        self.fault(format!("memcpy fault at cell {}", dst + i));
                        return None;
                    }
                }
                None
            }
            Builtin::Abs => Some(args[0].wrapping_abs()),
            Builtin::Exit => {
                self.status = ExecStatus::Exited(args[0]);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;

    fn run(src: &str, inputs: Vec<Input>) -> (ExecStatus, Vec<i64>) {
        let p = ipds_ir::parse(src).unwrap();
        let mut i = Interp::new(&p, inputs, ExecLimits::default());
        let s = i.run(&mut NullObserver);
        (s, i.output().to_vec())
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let (s, out) = run(
            "fn main() -> int { int i; int acc; acc = 0; \
             for (i = 1; i <= 5; i = i + 1) { acc = acc + i; } \
             print_int(acc); return acc; }",
            vec![],
        );
        assert_eq!(s, ExecStatus::Exited(15));
        assert_eq!(out, vec![15]);
    }

    #[test]
    fn inputs_and_branching() {
        let src = "fn main() -> int { int x; x = read_int(); \
                   if (x < 10) { print_int(1); } else { print_int(2); } return x; }";
        let (s, out) = run(src, vec![Input::Int(3)]);
        assert_eq!(s, ExecStatus::Exited(3));
        assert_eq!(out, vec![1]);
        let (_, out) = run(src, vec![Input::Int(30)]);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn function_calls_and_returns() {
        let (s, out) = run(
            "fn sq(int v) -> int { return v * v; } \
             fn main() -> int { int r; r = sq(read_int()); print_int(r); return r; }",
            vec![Input::Int(7)],
        );
        assert_eq!(s, ExecStatus::Exited(49));
        assert_eq!(out, vec![49]);
    }

    #[test]
    fn recursion() {
        let (s, _) = run(
            "fn fib(int n) -> int { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } \
             fn main() -> int { return fib(10); }",
            vec![],
        );
        assert_eq!(s, ExecStatus::Exited(55));
    }

    #[test]
    fn pointers_and_arrays() {
        let (s, _) = run(
            "fn bump(int *p) { *p = *p + 1; } \
             fn main() -> int { int a[3]; int i; \
             for (i = 0; i < 3; i = i + 1) { a[i] = i * 10; } \
             bump(&a[1]); return a[0] + a[1] + a[2]; }",
            vec![],
        );
        assert_eq!(s, ExecStatus::Exited(31)); // 0 + 11 + 20
    }

    #[test]
    fn string_builtins() {
        let (s, out) = run(
            "fn main() -> int { int buf[16]; int r; \
             strcpy(buf, \"admin\"); \
             r = strcmp(buf, \"admin\"); print_int(r); \
             r = strncmp(buf, \"adxxx\", 2); print_int(r); \
             r = strlen(buf); print_int(r); \
             return 0; }",
            vec![],
        );
        assert_eq!(s, ExecStatus::Exited(0));
        assert_eq!(out, vec![0, 0, 5]);
    }

    #[test]
    fn read_str_overflow_clobbers_neighbor() {
        // buf has 4 cells but read_str is allowed 8: the 5th char lands in
        // `flag` (and the NUL in `pad`).
        let (s, out) = run(
            "fn main() -> int { int buf[4]; int flag; int pad; flag = 0; pad = 1; \
             read_str(buf, 8); \
             if (flag == 0) { print_int(0); } else { print_int(1); } return flag; }",
            vec![Input::Str("AAAAZ".into())],
        );
        // 'Z' = 90 lands in flag.
        assert_eq!(s, ExecStatus::Exited('Z' as i64));
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn atoi_and_exit() {
        let (s, _) = run(
            "fn main() -> int { int buf[8]; read_str(buf, 7); exit(atoi(buf)); return 9; }",
            vec![Input::Str("42".into())],
        );
        assert_eq!(s, ExecStatus::Exited(42));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let p = ipds_ir::parse("fn main() -> int { while (1 == 1) { } return 0; }").unwrap();
        let mut i = Interp::new(
            &p,
            vec![],
            ExecLimits {
                max_steps: 1000,
                max_depth: 64,
            },
        );
        assert_eq!(i.run(&mut NullObserver), ExecStatus::OutOfBudget);
    }

    #[test]
    fn stack_overflow_faults() {
        let p = ipds_ir::parse(
            "fn rec(int n) -> int { return rec(n + 1); } fn main() -> int { return rec(0); }",
        )
        .unwrap();
        let mut i = Interp::new(&p, vec![], ExecLimits::default());
        assert!(matches!(i.run(&mut NullObserver), ExecStatus::Fault(_)));
    }

    #[test]
    fn wild_store_faults() {
        let (s, _) = run(
            "fn main() -> int { int *p; p = 99999999; *p = 1; return 0; }",
            vec![],
        );
        assert!(matches!(s, ExecStatus::Fault(_)), "{s:?}");
    }

    #[test]
    fn negative_pointer_store_faults_instead_of_aliasing_cell_zero() {
        // Regression: `.max(0)` used to clamp this to address 0 and the
        // write landed on a live cell, silently masking the tampering.
        let (s, _) = run(
            "fn main() -> int { int *p; p = 0 - 5; *p = 1; return 0; }",
            vec![],
        );
        assert_eq!(
            s,
            ExecStatus::Fault("store to out-of-bounds address -5".into())
        );
    }

    #[test]
    fn negative_pointer_load_faults_instead_of_reading_zero() {
        // Regression: a clamped load used to quietly return cell 0.
        let (s, out) = run(
            "fn main() -> int { int *p; int v; p = 0 - 1; v = *p; print_int(v); return v; }",
            vec![],
        );
        assert_eq!(
            s,
            ExecStatus::Fault("load from out-of-bounds address -1".into())
        );
        assert!(out.is_empty(), "the faulting load must not produce output");
    }

    #[test]
    fn negative_array_index_faults() {
        let (s, _) = run(
            "fn main() -> int { int a[4]; int i; i = 0 - 100000; a[i] = 7; return 0; }",
            vec![],
        );
        assert!(
            matches!(&s, ExecStatus::Fault(m) if m.contains("out-of-bounds address")),
            "{s:?}"
        );
    }

    #[test]
    fn negative_builtin_pointer_faults() {
        let (s, _) = run(
            "fn main() -> int { int *p; p = 0 - 8; strcpy(p, \"x\"); return 0; }",
            vec![],
        );
        assert!(
            matches!(&s, ExecStatus::Fault(m) if m.contains("out-of-bounds address")),
            "{s:?}"
        );
        let (s, _) = run(
            "fn main() -> int { int *p; int n; p = 0 - 8; n = strlen(p); return n; }",
            vec![],
        );
        assert!(
            matches!(&s, ExecStatus::Fault(m) if m.contains("out-of-bounds address")),
            "{s:?}"
        );
    }

    #[test]
    fn negative_lengths_are_empty_not_wild() {
        // A negative count is a degenerate request, not a tampered address:
        // it copies/sets nothing and execution continues.
        let (s, out) = run(
            "fn main() -> int { int a[4]; int n; n = 0 - 3; \
             a[0] = 5; memset(a, 9, n); print_int(a[0]); return 0; }",
            vec![],
        );
        assert_eq!(s, ExecStatus::Exited(0));
        assert_eq!(out, vec![5], "memset with negative n must be a no-op");
    }

    #[test]
    fn observer_sees_branches_and_calls() {
        use crate::observer::BranchTrace;
        let p = ipds_ir::parse(
            "fn f() -> int { return 1; } \
             fn main() -> int { int x; x = read_int(); if (x < 5) { f(); } return 0; }",
        )
        .unwrap();
        let mut tr = BranchTrace::with_cap(0);
        let mut i = Interp::new(&p, vec![Input::Int(1)], ExecLimits::default());
        i.run(&mut tr);
        assert_eq!(tr.trace.len(), 1);
        assert!(tr.trace[0].1, "x < 5 taken");
    }
}
