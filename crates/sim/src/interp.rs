//! The IR interpreter.
//!
//! Executes a [`Program`] one instruction at a time against the flat
//! [`Memory`], emitting events to an [`ExecObserver`]. Step-level control is
//! what the attack injector needs: it runs to a chosen instant, tampers a
//! cell, and resumes.

use std::collections::VecDeque;

use ipds_ir::{
    Address, Builtin, Callee, FuncId, Function, Inst, Operand, Program, Reg, Terminator, VarId,
};

use crate::memory::Memory;
use crate::observer::ExecObserver;

/// One element of the program's input stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Input {
    /// Consumed by `read_int()`.
    Int(i64),
    /// Consumed by `read_str(dst, max)`.
    Str(String),
}

impl From<i64> for Input {
    fn from(v: i64) -> Self {
        Input::Int(v)
    }
}

impl From<&str> for Input {
    fn from(s: &str) -> Self {
        Input::Str(s.to_string())
    }
}

/// Why execution stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecStatus {
    /// Still runnable.
    Running,
    /// `main` returned or `exit(code)` was called.
    Exited(i64),
    /// A memory fault (wild or read-only write) terminated the program.
    Fault(String),
    /// The step budget ran out (treated as a hang).
    OutOfBudget,
}

/// Execution limits.
#[derive(Debug, Clone, Copy)]
pub struct ExecLimits {
    /// Maximum interpreted steps (instructions + terminators).
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            max_steps: 10_000_000,
            max_depth: 256,
        }
    }
}

/// Per-function PC layout: cumulative instruction offsets per block.
#[derive(Debug, Clone)]
struct PcMap {
    block_start: Vec<u64>,
}

impl PcMap {
    fn new(func: &Function) -> PcMap {
        let mut block_start = Vec::with_capacity(func.blocks.len());
        let mut off = 0u64;
        for b in &func.blocks {
            block_start.push(off);
            off += b.insts.len() as u64 + 1;
        }
        PcMap { block_start }
    }

    fn pc(&self, func: &Function, block: usize, idx: usize) -> u64 {
        func.pc_base + 4 * (self.block_start[block] + idx as u64)
    }
}

#[derive(Debug)]
struct Activation {
    func: u32,
    block: usize,
    idx: usize,
    regs: Vec<i64>,
    frame: usize,
    ret_dst: Option<Reg>,
}

/// The interpreter.
#[derive(Debug)]
pub struct Interp<'a> {
    program: &'a Program,
    /// The simulated memory (public so the attack injector can tamper).
    pub mem: Memory,
    pcs: Vec<PcMap>,
    inputs: VecDeque<Input>,
    output: Vec<i64>,
    stack: Vec<Activation>,
    status: ExecStatus,
    steps: u64,
    limits: ExecLimits,
    /// Retired register vectors, recycled by `enter` so steady-state
    /// execution (and campaign reuse via [`Interp::reset`]) allocates no
    /// per-call register storage.
    reg_pool: Vec<Vec<i64>>,
}

impl<'a> Interp<'a> {
    /// Creates an interpreter poised at the entry of `main`.
    ///
    /// # Panics
    ///
    /// Panics if the program has no `main`.
    pub fn new(
        program: &'a Program,
        inputs: impl IntoIterator<Item = Input>,
        limits: ExecLimits,
    ) -> Interp<'a> {
        let pcs = program.functions.iter().map(PcMap::new).collect();
        let mut interp = Interp {
            program,
            mem: Memory::new(program),
            pcs,
            inputs: inputs.into_iter().collect(),
            output: Vec::new(),
            stack: Vec::new(),
            status: ExecStatus::Running,
            steps: 0,
            limits,
            reg_pool: Vec::new(),
        };
        let main = program.main().expect("program must define `main`");
        interp.enter(main.id, &[], None);
        interp
    }

    /// Rewinds the interpreter to the entry of `main` with a fresh input
    /// stream, reusing every allocation already made (memory image, register
    /// vectors, output buffer). Equivalent to — but much cheaper than —
    /// constructing a new `Interp`.
    pub fn reset(&mut self, inputs: impl IntoIterator<Item = Input>) {
        self.mem.reset();
        self.inputs.clear();
        self.inputs.extend(inputs);
        self.output.clear();
        for act in self.stack.drain(..) {
            self.reg_pool.push(act.regs);
        }
        self.status = ExecStatus::Running;
        self.steps = 0;
        let main = self.program.main().expect("program must define `main`");
        self.enter(main.id, &[], None);
    }

    fn func(&self, id: u32) -> &'a Function {
        &self.program.functions[id as usize]
    }

    fn enter(&mut self, func: FuncId, args: &[i64], ret_dst: Option<Reg>) {
        let f = self.func(func.0);
        let frame = self.mem.push_frame(f);
        for (i, &a) in args.iter().enumerate() {
            let addr = self.mem.addr_of(frame, VarId::local(i as u32));
            // Frame cells were just allocated; this store cannot fault.
            let ok = self.mem.store(addr, a);
            debug_assert!(ok);
        }
        let mut regs = self.reg_pool.pop().unwrap_or_default();
        regs.clear();
        regs.resize(f.next_reg as usize, 0);
        self.stack.push(Activation {
            func: func.0,
            block: f.entry.index(),
            idx: 0,
            regs,
            frame,
            ret_dst,
        });
    }

    /// The current status.
    pub fn status(&self) -> &ExecStatus {
        &self.status
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Values printed so far (`print_int`; `print_str` pushes each cell).
    pub fn output(&self) -> &[i64] {
        &self.output
    }

    /// Current call depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Runs until exit/fault/budget, notifying `obs`.
    pub fn run(&mut self, obs: &mut impl ExecObserver) -> ExecStatus {
        while self.status == ExecStatus::Running {
            self.step(obs);
        }
        self.status.clone()
    }

    /// Runs at most `n` further steps.
    pub fn run_steps(&mut self, n: u64, obs: &mut impl ExecObserver) -> ExecStatus {
        let target = self.steps.saturating_add(n);
        while self.status == ExecStatus::Running && self.steps < target {
            self.step(obs);
        }
        self.status.clone()
    }

    fn operand(&self, act: &Activation, op: Operand) -> i64 {
        match op {
            Operand::Reg(r) => act.regs[r.0 as usize],
            Operand::Imm(v) => v,
        }
    }

    fn fault(&mut self, msg: impl Into<String>) {
        self.status = ExecStatus::Fault(msg.into());
    }

    /// Resolves an address expression to an absolute cell address.
    ///
    /// `Err(raw)` carries the computed address when it is negative — a
    /// tampered or underflowed pointer. Callers turn that into a memory
    /// fault: clamping it (the old behavior) silently aliased tampered
    /// pointers onto cell 0, masking exactly the corruption the IPDS
    /// exists to surface.
    fn resolve(&self, act: &Activation, addr: &Address) -> Result<usize, i64> {
        let raw = match addr {
            Address::Var(v) => return Ok(self.mem.addr_of(act.frame, *v)),
            Address::Element { base, index } => {
                let b = self.mem.addr_of(act.frame, *base);
                let i = self.operand(act, *index);
                // Deliberately unchecked against the array bound: this is
                // the buffer-overflow surface. Positive overruns walk into
                // neighboring cells; negative ones are reported via `Err`.
                (b as i64).wrapping_add(i)
            }
            Address::Ptr { reg, offset } => act.regs[reg.0 as usize].wrapping_add(*offset),
        };
        usize::try_from(raw).map_err(|_| raw)
    }

    /// Converts a builtin's pointer argument into a cell address, faulting
    /// on negative (tampered) values. `None` means the fault was recorded
    /// and the builtin must bail out.
    fn addr_arg(&mut self, what: &str, v: i64) -> Option<usize> {
        match usize::try_from(v) {
            Ok(a) => Some(a),
            Err(_) => {
                self.fault(format!("{what}: out-of-bounds address {v}"));
                None
            }
        }
    }

    /// Executes one instruction or terminator.
    pub fn step(&mut self, obs: &mut impl ExecObserver) {
        if self.status != ExecStatus::Running {
            return;
        }
        self.steps += 1;
        if self.steps > self.limits.max_steps {
            self.status = ExecStatus::OutOfBudget;
            return;
        }
        let Some(act_idx) = self.stack.len().checked_sub(1) else {
            self.status = ExecStatus::Exited(0);
            return;
        };
        let (func_id, block, idx) = {
            let a = &self.stack[act_idx];
            (a.func, a.block, a.idx)
        };
        let func = self.func(func_id);
        let pc = self.pcs[func_id as usize].pc(func, block, idx);
        obs.on_inst(pc);

        let bb = &func.blocks[block];
        if idx < bb.insts.len() {
            self.exec_inst(act_idx, &bb.insts[idx], pc, obs);
            if self.status == ExecStatus::Running {
                // exec_inst may have pushed a new activation (call); only
                // advance the original one.
                self.stack[act_idx].idx = idx + 1;
            }
        } else {
            self.exec_terminator(act_idx, &bb.term, pc, obs);
        }
    }

    fn exec_inst(&mut self, act_idx: usize, inst: &Inst, pc: u64, obs: &mut impl ExecObserver) {
        match inst {
            Inst::Const { dst, value } => {
                self.stack[act_idx].regs[dst.0 as usize] = *value;
            }
            Inst::BinOp { dst, op, lhs, rhs } => {
                let a = self.operand(&self.stack[act_idx], *lhs);
                let b = self.operand(&self.stack[act_idx], *rhs);
                self.stack[act_idx].regs[dst.0 as usize] = op.eval(a, b);
            }
            Inst::Cmp {
                dst,
                pred,
                lhs,
                rhs,
            } => {
                let a = self.operand(&self.stack[act_idx], *lhs);
                let b = self.operand(&self.stack[act_idx], *rhs);
                self.stack[act_idx].regs[dst.0 as usize] = pred.eval(a, b) as i64;
            }
            Inst::Load { dst, addr } => match self.resolve(&self.stack[act_idx], addr) {
                Ok(a) => {
                    obs.on_mem(pc, a, false);
                    self.stack[act_idx].regs[dst.0 as usize] = self.mem.load(a);
                }
                Err(raw) => self.fault(format!("load from out-of-bounds address {raw}")),
            },
            Inst::Store { addr, src } => match self.resolve(&self.stack[act_idx], addr) {
                Ok(a) => {
                    let v = self.operand(&self.stack[act_idx], *src);
                    obs.on_mem(pc, a, true);
                    if !self.mem.store(a, v) {
                        self.fault(format!("store fault at cell {a}"));
                    }
                }
                Err(raw) => self.fault(format!("store to out-of-bounds address {raw}")),
            },
            Inst::AddrOf { dst, base, offset } => {
                let b = self.mem.addr_of(self.stack[act_idx].frame, *base);
                let o = self.operand(&self.stack[act_idx], *offset);
                self.stack[act_idx].regs[dst.0 as usize] = (b as i64).wrapping_add(o);
            }
            Inst::Call { dst, callee, args } => {
                let argv: Vec<i64> = args
                    .iter()
                    .map(|a| self.operand(&self.stack[act_idx], *a))
                    .collect();
                match callee {
                    Callee::Direct(fid) => {
                        if self.stack.len() >= self.limits.max_depth {
                            self.fault("call stack overflow");
                            return;
                        }
                        // step() advances the caller's idx past the call
                        // after we return; the new activation starts at its
                        // entry block independently.
                        self.enter(*fid, &argv, *dst);
                        obs.on_call(*fid);
                    }
                    Callee::Builtin(b) => {
                        let result = self.exec_builtin(*b, &argv, pc, obs);
                        if self.status != ExecStatus::Running {
                            return;
                        }
                        if let (Some(d), Some(v)) = (dst, result) {
                            self.stack[act_idx].regs[d.0 as usize] = v;
                        }
                    }
                }
            }
        }
    }

    fn exec_terminator(
        &mut self,
        act_idx: usize,
        term: &Terminator,
        pc: u64,
        obs: &mut impl ExecObserver,
    ) {
        match term {
            Terminator::Jump(t) => {
                self.stack[act_idx].block = t.index();
                self.stack[act_idx].idx = 0;
            }
            Terminator::Branch {
                cond,
                taken,
                not_taken,
            } => {
                let c = self.stack[act_idx].regs[cond.0 as usize];
                let dir = c != 0;
                obs.on_branch(pc, dir);
                let target = if dir { taken } else { not_taken };
                self.stack[act_idx].block = target.index();
                self.stack[act_idx].idx = 0;
            }
            Terminator::Return(v) => {
                let value = v.map(|op| self.operand(&self.stack[act_idx], op));
                let act = self.stack.pop().expect("active frame");
                self.mem.pop_frame();
                if self.stack.is_empty() {
                    self.status = ExecStatus::Exited(value.unwrap_or(0));
                    self.reg_pool.push(act.regs);
                    return;
                }
                obs.on_return();
                if let Some(dst) = act.ret_dst {
                    let caller = self.stack.len() - 1;
                    self.stack[caller].regs[dst.0 as usize] = value.unwrap_or(0);
                }
                self.reg_pool.push(act.regs);
                // The caller's idx was already advanced past the call when
                // the call instruction executed.
            }
        }
    }

    fn read_cstr(&self, addr: usize, max: usize) -> Vec<i64> {
        let mut out = Vec::new();
        for i in 0..max {
            let c = self.mem.load(addr + i);
            if c == 0 {
                break;
            }
            out.push(c);
        }
        out
    }

    fn exec_builtin(
        &mut self,
        b: Builtin,
        args: &[i64],
        pc: u64,
        obs: &mut impl ExecObserver,
    ) -> Option<i64> {
        match b {
            Builtin::ReadInt => loop {
                match self.inputs.pop_front() {
                    Some(Input::Int(v)) => return Some(v),
                    Some(Input::Str(_)) => continue, // skip mismatched input
                    None => return Some(0),
                }
            },
            Builtin::ReadStr => {
                let dst = self.addr_arg("read_str", args[0])?;
                // A negative length reads nothing (only the NUL is written).
                let max = usize::try_from(args[1]).unwrap_or(0);
                let s = loop {
                    match self.inputs.pop_front() {
                        Some(Input::Str(s)) => break s,
                        Some(Input::Int(_)) => continue,
                        None => break String::new(),
                    }
                };
                // Unbounded against the real buffer: copies up to `max`
                // cells plus NUL. The caller passing a `max` larger than the
                // buffer is the classic overflow bug.
                let mut wrote = 0usize;
                for (i, c) in s.chars().take(max).enumerate() {
                    obs.on_mem(pc, dst + i, true);
                    if !self.mem.store(dst + i, c as i64) {
                        self.fault(format!("read_str overflow fault at cell {}", dst + i));
                        return None;
                    }
                    wrote = i + 1;
                }
                obs.on_mem(pc, dst + wrote, true);
                if !self.mem.store(dst + wrote, 0) {
                    self.fault("read_str NUL fault");
                    return None;
                }
                Some(wrote as i64)
            }
            Builtin::PrintInt => {
                self.output.push(args[0]);
                None
            }
            Builtin::PrintStr => {
                let a = self.addr_arg("print_str", args[0])?;
                let s = self.read_cstr(a, 4096);
                self.output.extend(s);
                None
            }
            Builtin::StrCmp | Builtin::StrNCmp => {
                let limit = if b == Builtin::StrNCmp {
                    usize::try_from(args[2]).unwrap_or(0)
                } else {
                    4096
                };
                let lhs = self.addr_arg("strcmp", args[0])?;
                let rhs = self.addr_arg("strcmp", args[1])?;
                let a = self.read_cstr(lhs, limit);
                let c = self.read_cstr(rhs, limit);
                for i in 0..limit {
                    let x = a.get(i).copied().unwrap_or(0);
                    let y = c.get(i).copied().unwrap_or(0);
                    if x != y {
                        return Some(if x < y { -1 } else { 1 });
                    }
                    if x == 0 {
                        break;
                    }
                }
                Some(0)
            }
            Builtin::StrCpy => {
                let dst = self.addr_arg("strcpy", args[0])?;
                let from = self.addr_arg("strcpy", args[1])?;
                let src = self.read_cstr(from, 4096);
                for (i, &c) in src.iter().enumerate() {
                    obs.on_mem(pc, dst + i, true);
                    if !self.mem.store(dst + i, c) {
                        self.fault(format!("strcpy fault at cell {}", dst + i));
                        return None;
                    }
                }
                obs.on_mem(pc, dst + src.len(), true);
                if !self.mem.store(dst + src.len(), 0) {
                    self.fault("strcpy NUL fault");
                }
                None
            }
            Builtin::StrLen => {
                let a = self.addr_arg("strlen", args[0])?;
                Some(self.read_cstr(a, 4096).len() as i64)
            }
            Builtin::Atoi => {
                let a = self.addr_arg("atoi", args[0])?;
                let s = self.read_cstr(a, 64);
                let text: String = s
                    .iter()
                    .map(|&c| char::from_u32(c as u32).unwrap_or('\0'))
                    .collect();
                Some(text.trim().parse::<i64>().unwrap_or(0))
            }
            Builtin::MemSet => {
                let dst = self.addr_arg("memset", args[0])?;
                let v = args[1];
                // A negative count writes nothing.
                let n = usize::try_from(args[2]).unwrap_or(0);
                for i in 0..n {
                    obs.on_mem(pc, dst + i, true);
                    if !self.mem.store(dst + i, v) {
                        self.fault(format!("memset fault at cell {}", dst + i));
                        return None;
                    }
                }
                None
            }
            Builtin::MemCpy => {
                let dst = self.addr_arg("memcpy", args[0])?;
                let src = self.addr_arg("memcpy", args[1])?;
                let n = usize::try_from(args[2]).unwrap_or(0);
                for i in 0..n {
                    let v = self.mem.load(src + i);
                    obs.on_mem(pc, dst + i, true);
                    if !self.mem.store(dst + i, v) {
                        self.fault(format!("memcpy fault at cell {}", dst + i));
                        return None;
                    }
                }
                None
            }
            Builtin::Abs => Some(args[0].wrapping_abs()),
            Builtin::Exit => {
                self.status = ExecStatus::Exited(args[0]);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;

    fn run(src: &str, inputs: Vec<Input>) -> (ExecStatus, Vec<i64>) {
        let p = ipds_ir::parse(src).unwrap();
        let mut i = Interp::new(&p, inputs, ExecLimits::default());
        let s = i.run(&mut NullObserver);
        (s, i.output().to_vec())
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let (s, out) = run(
            "fn main() -> int { int i; int acc; acc = 0; \
             for (i = 1; i <= 5; i = i + 1) { acc = acc + i; } \
             print_int(acc); return acc; }",
            vec![],
        );
        assert_eq!(s, ExecStatus::Exited(15));
        assert_eq!(out, vec![15]);
    }

    #[test]
    fn inputs_and_branching() {
        let src = "fn main() -> int { int x; x = read_int(); \
                   if (x < 10) { print_int(1); } else { print_int(2); } return x; }";
        let (s, out) = run(src, vec![Input::Int(3)]);
        assert_eq!(s, ExecStatus::Exited(3));
        assert_eq!(out, vec![1]);
        let (_, out) = run(src, vec![Input::Int(30)]);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn function_calls_and_returns() {
        let (s, out) = run(
            "fn sq(int v) -> int { return v * v; } \
             fn main() -> int { int r; r = sq(read_int()); print_int(r); return r; }",
            vec![Input::Int(7)],
        );
        assert_eq!(s, ExecStatus::Exited(49));
        assert_eq!(out, vec![49]);
    }

    #[test]
    fn recursion() {
        let (s, _) = run(
            "fn fib(int n) -> int { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } \
             fn main() -> int { return fib(10); }",
            vec![],
        );
        assert_eq!(s, ExecStatus::Exited(55));
    }

    #[test]
    fn pointers_and_arrays() {
        let (s, _) = run(
            "fn bump(int *p) { *p = *p + 1; } \
             fn main() -> int { int a[3]; int i; \
             for (i = 0; i < 3; i = i + 1) { a[i] = i * 10; } \
             bump(&a[1]); return a[0] + a[1] + a[2]; }",
            vec![],
        );
        assert_eq!(s, ExecStatus::Exited(31)); // 0 + 11 + 20
    }

    #[test]
    fn string_builtins() {
        let (s, out) = run(
            "fn main() -> int { int buf[16]; int r; \
             strcpy(buf, \"admin\"); \
             r = strcmp(buf, \"admin\"); print_int(r); \
             r = strncmp(buf, \"adxxx\", 2); print_int(r); \
             r = strlen(buf); print_int(r); \
             return 0; }",
            vec![],
        );
        assert_eq!(s, ExecStatus::Exited(0));
        assert_eq!(out, vec![0, 0, 5]);
    }

    #[test]
    fn read_str_overflow_clobbers_neighbor() {
        // buf has 4 cells but read_str is allowed 8: the 5th char lands in
        // `flag` (and the NUL in `pad`).
        let (s, out) = run(
            "fn main() -> int { int buf[4]; int flag; int pad; flag = 0; pad = 1; \
             read_str(buf, 8); \
             if (flag == 0) { print_int(0); } else { print_int(1); } return flag; }",
            vec![Input::Str("AAAAZ".into())],
        );
        // 'Z' = 90 lands in flag.
        assert_eq!(s, ExecStatus::Exited('Z' as i64));
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn atoi_and_exit() {
        let (s, _) = run(
            "fn main() -> int { int buf[8]; read_str(buf, 7); exit(atoi(buf)); return 9; }",
            vec![Input::Str("42".into())],
        );
        assert_eq!(s, ExecStatus::Exited(42));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let p = ipds_ir::parse("fn main() -> int { while (1 == 1) { } return 0; }").unwrap();
        let mut i = Interp::new(
            &p,
            vec![],
            ExecLimits {
                max_steps: 1000,
                max_depth: 64,
            },
        );
        assert_eq!(i.run(&mut NullObserver), ExecStatus::OutOfBudget);
    }

    #[test]
    fn stack_overflow_faults() {
        let p = ipds_ir::parse(
            "fn rec(int n) -> int { return rec(n + 1); } fn main() -> int { return rec(0); }",
        )
        .unwrap();
        let mut i = Interp::new(&p, vec![], ExecLimits::default());
        assert!(matches!(i.run(&mut NullObserver), ExecStatus::Fault(_)));
    }

    #[test]
    fn wild_store_faults() {
        let (s, _) = run(
            "fn main() -> int { int *p; p = 99999999; *p = 1; return 0; }",
            vec![],
        );
        assert!(matches!(s, ExecStatus::Fault(_)), "{s:?}");
    }

    #[test]
    fn negative_pointer_store_faults_instead_of_aliasing_cell_zero() {
        // Regression: `.max(0)` used to clamp this to address 0 and the
        // write landed on a live cell, silently masking the tampering.
        let (s, _) = run(
            "fn main() -> int { int *p; p = 0 - 5; *p = 1; return 0; }",
            vec![],
        );
        assert_eq!(
            s,
            ExecStatus::Fault("store to out-of-bounds address -5".into())
        );
    }

    #[test]
    fn negative_pointer_load_faults_instead_of_reading_zero() {
        // Regression: a clamped load used to quietly return cell 0.
        let (s, out) = run(
            "fn main() -> int { int *p; int v; p = 0 - 1; v = *p; print_int(v); return v; }",
            vec![],
        );
        assert_eq!(
            s,
            ExecStatus::Fault("load from out-of-bounds address -1".into())
        );
        assert!(out.is_empty(), "the faulting load must not produce output");
    }

    #[test]
    fn negative_array_index_faults() {
        let (s, _) = run(
            "fn main() -> int { int a[4]; int i; i = 0 - 100000; a[i] = 7; return 0; }",
            vec![],
        );
        assert!(
            matches!(&s, ExecStatus::Fault(m) if m.contains("out-of-bounds address")),
            "{s:?}"
        );
    }

    #[test]
    fn negative_builtin_pointer_faults() {
        let (s, _) = run(
            "fn main() -> int { int *p; p = 0 - 8; strcpy(p, \"x\"); return 0; }",
            vec![],
        );
        assert!(
            matches!(&s, ExecStatus::Fault(m) if m.contains("out-of-bounds address")),
            "{s:?}"
        );
        let (s, _) = run(
            "fn main() -> int { int *p; int n; p = 0 - 8; n = strlen(p); return n; }",
            vec![],
        );
        assert!(
            matches!(&s, ExecStatus::Fault(m) if m.contains("out-of-bounds address")),
            "{s:?}"
        );
    }

    #[test]
    fn negative_lengths_are_empty_not_wild() {
        // A negative count is a degenerate request, not a tampered address:
        // it copies/sets nothing and execution continues.
        let (s, out) = run(
            "fn main() -> int { int a[4]; int n; n = 0 - 3; \
             a[0] = 5; memset(a, 9, n); print_int(a[0]); return 0; }",
            vec![],
        );
        assert_eq!(s, ExecStatus::Exited(0));
        assert_eq!(out, vec![5], "memset with negative n must be a no-op");
    }

    #[test]
    fn observer_sees_branches_and_calls() {
        use crate::observer::BranchTrace;
        let p = ipds_ir::parse(
            "fn f() -> int { return 1; } \
             fn main() -> int { int x; x = read_int(); if (x < 5) { f(); } return 0; }",
        )
        .unwrap();
        let mut tr = BranchTrace::with_cap(0);
        let mut i = Interp::new(&p, vec![Input::Int(1)], ExecLimits::default());
        i.run(&mut tr);
        assert_eq!(tr.trace.len(), 1);
        assert!(tr.trace[0].1, "x < 5 taken");
    }
}
