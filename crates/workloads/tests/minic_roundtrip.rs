//! Pretty-printer round-trip property: for every program we ship or
//! generate, `parse(emit(parse(src)))` reproduces the exact AST. The
//! emitter fully parenthesizes expressions, so structural equality (not
//! textual) is the contract — `emit` is a faithful inverse of `parse`
//! modulo whitespace and redundant parens.

use ipds_ir::{emit_items, lexer, parser};
use ipds_workloads::generator::{generate_program, GenConfig};

fn roundtrip(label: &str, src: &str) {
    let tokens = lexer::lex(src).unwrap_or_else(|e| panic!("{label}: lex: {e:?}"));
    let items = parser::parse_items(&tokens).unwrap_or_else(|e| panic!("{label}: parse: {e:?}"));
    let emitted = emit_items(&items);
    let tokens2 =
        lexer::lex(&emitted).unwrap_or_else(|e| panic!("{label}: re-lex: {e:?}\n{emitted}"));
    let items2 = parser::parse_items(&tokens2)
        .unwrap_or_else(|e| panic!("{label}: re-parse: {e:?}\n{emitted}"));
    assert_eq!(items, items2, "{label}: round-trip changed the AST");
    // Emission is a fixpoint after one round: emit(parse(emit(p))) == emit(p).
    assert_eq!(
        emitted,
        emit_items(&items2),
        "{label}: emitted text is not a fixpoint"
    );
}

#[test]
fn stock_workloads_round_trip() {
    let workloads = ipds_workloads::extended();
    assert!(workloads.len() >= 12);
    for w in workloads {
        roundtrip(w.name, w.source);
    }
}

#[test]
fn generated_corpus_round_trips() {
    for seed in 0..64 {
        let src = generate_program(seed, GenConfig::default());
        roundtrip(&format!("gen[{seed}]"), &src);
    }
}
