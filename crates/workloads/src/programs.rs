//! The ten synthetic server programs (MiniC sources).
//!
//! Each mirrors the control structure of the corresponding real server from
//! the paper's benchmark list and deliberately contains the idioms IPDS
//! protects: repeatedly-tested auth/privilege/config variables, dispatch
//! loops over memory-resident state, and an authentic overflow surface
//! (`read_str`/`strcpy` with a limit larger than the buffer) that benign
//! traffic never triggers.

/// telnetd — login + option negotiation + echo loop (buffer overflow in the
/// line buffer).
pub const TELNETD: &str = r#"
// telnetd: authentication state machine with option negotiation.
int failures;

fn check_pass(int user, int pass) -> int {
    if (user == 1 && pass == 1234) { return 1; }
    if (user == 2 && pass == 77) { return 1; }
    return 0;
}

fn sanitize(int *buf, int n) -> int {
    // Reject telnet IAC bytes and anything outside printable ASCII over
    // the whole buffer window (stale bytes included, like a real daemon
    // scanning its fixed-size line buffer).
    int k;
    for (k = 0; k < n; k = k + 1) {
        if (buf[k] < 0 || buf[k] > 127) { return 0; }
    }
    return 1;
}

fn main() -> int {
    int user; int pass; int cmd; int running; int priv;
    int logged_in; int reqs; int ok; int opt; int val;
    int echo_mode; int term_w; int term_h;
    int line[6];
    logged_in = 0; priv = 0; failures = 0; running = 1; reqs = 0;
    echo_mode = 1; term_w = 80; term_h = 24;
    user = read_int();
    pass = read_int();
    if (check_pass(user, pass) == 1) {
        logged_in = 1;
        if (user == 1) { priv = 1; }
    } else {
        failures = failures + 1;
    }
    while (running == 1 && reqs < 64) {
        reqs = reqs + 1;
        cmd = read_int();
        if (cmd == 0) {
            running = 0;
        } else if (cmd == 1) {
            // Echo a line. VULN: line has 8 cells, the copy allows 16.
            read_str(line, 12);
            ok = sanitize(line, 6);
            // Lines are parsed: 'q' hangs up, '!' is a shell escape for
            // privileged users, anything else echoes.
            if (ok == 0) {
                failures = failures + 1;
            } else if (line[0] == 'q') {
                running = 0;
            } else if (line[0] == '!') {
                if (priv == 1) { print_int(777); } else { failures = failures + 1; }
            } else {
                if (logged_in == 1) { print_str(line); } else { print_int(-1); }
            }
        } else if (cmd == 2) {
            opt = read_int();
            val = read_int();
            if (opt == 1) {
                if (val == 0 || val == 1) { echo_mode = val; }
            } else if (opt == 2) {
                if (val > 10 && val < 300) { term_w = val; }
            } else if (opt == 3) {
                if (val > 5 && val < 200) { term_h = val; }
            }
            if (echo_mode == 1) { print_int(1); }
        } else if (cmd == 3) {
            // Privileged operation: must agree with the login outcome.
            if (priv == 1) { print_int(999); } else { print_int(-2); }
        } else if (cmd == 4) {
            if (logged_in == 1) {
                print_int(term_w);
                print_int(term_h);
            } else { print_int(-1); }
        } else {
            failures = failures + 1;
        }
        if (failures > 5) { running = 0; }
    }
    return failures;
}
"#;

/// wu-ftpd — FTP session with anonymous/real users (format-string class in
/// the logging path).
pub const WUFTPD: &str = r#"
// wuftpd: USER/PASS then file commands; uid drives permissions.
int uid;
int anon_ok = 1;
int xfers;
int log_level = 1;

fn log_event(int code, int detail) {
    // The original bug class: logging attacker-controlled data. Our model
    // attack writes an arbitrary cell; here logging just counts.
    if (log_level > 0) { print_int(code); }
    if (log_level > 1) { print_int(detail); }
}

fn authorize(int user, int pass) -> int {
    if (user == 0 && anon_ok == 1) { return 100; }
    if (user == 1 && pass == 5150) { return 1; }
    if (user == 2 && pass == 2001) { return 2; }
    return -1;
}

fn path_legal(int *p, int n) -> int {
    // Whole-window scan: no control bytes, no '/' escapes anywhere in the
    // fixed-size filename buffer.
    int k;
    for (k = 0; k < n; k = k + 1) {
        if (p[k] < 0 || p[k] > 126) { return 0; }
        if (p[k] == '/') { return 0; }
    }
    return 1;
}

fn main() -> int {
    int user; int pass; int cmd; int running; int reqs; int anon_reqs;
    int fname[6]; int cwd; int rc; int legal; int violations;
    anon_reqs = 0; violations = 0;
    user = read_int();
    pass = read_int();
    uid = authorize(user, pass);
    if (uid < 0) {
        log_event(530, user);
        return 1;
    }
    log_event(230, uid);
    running = 1; reqs = 0; cwd = 0; xfers = 0;
    while (running == 1 && reqs < 64) {
        reqs = reqs + 1;
        // Per-request accounting: anonymous sessions are metered. This
        // uid test repeats every iteration and must agree with the login.
        if (uid == 100) { anon_reqs = anon_reqs + 1; }
        // The quota counter is rarely written for real users but checked
        // on every request.
        if (anon_reqs > 60) { running = 0; }
        // Protocol violations are sticky: benign sessions never trip them.
        if (violations > 2) { running = 0; }
        cmd = read_int();
        if (cmd == 0) {
            running = 0;
        } else if (cmd == 1) {
            // CWD: anonymous users stay in the pub tree.
            rc = read_int();
            if (uid == 100) {
                if (rc >= 0 && rc < 4) { cwd = rc; }
            } else {
                if (rc >= 0 && rc < 16) { cwd = rc; }
            }
            log_event(250, cwd);
        } else if (cmd == 2) {
            // RETR: needs any login; VULN: filename buffer. Dotfiles and
            // the password database are off limits.
            read_str(fname, 12);
            legal = path_legal(fname, 6);
            if (legal == 0) {
                violations = violations + 1;
                log_event(553, 0);
            } else if (fname[0] == '.') {
                log_event(550, 2);
            } else if (strcmp(fname, "passwd") == 0) {
                log_event(550, 3);
            } else {
                xfers = xfers + 1;
                log_event(226, xfers);
            }
        } else if (cmd == 3) {
            // STOR: anonymous may not write, and dotfiles are refused.
            read_str(fname, 12);
            legal = path_legal(fname, 6);
            if (uid == 100) {
                log_event(550, 0);
            } else if (legal == 0) {
                violations = violations + 1;
                log_event(553, 1);
            } else if (fname[0] == '.') {
                log_event(550, 4);
            } else {
                xfers = xfers + 1;
                log_event(226, xfers);
            }
        } else if (cmd == 4) {
            // SITE CHMOD: real users only, same check as STOR must agree.
            if (uid == 100) { log_event(550, 1); } else { log_event(200, 0); }
        } else {
            log_event(500, cmd);
        }
    }
    log_event(221, reqs);
    print_int(anon_reqs);
    return 0;
}
"#;

/// xinetd — super-server dispatching to service handlers guarded by a
/// per-service access table (buffer overflow in the service-name buffer).
pub const XINETD: &str = r#"
// xinetd: service dispatch with per-service enable flags and rate limits.
int enabled[8];
int hits[8];
int rate_cap = 6;

fn init_services() {
    int i;
    for (i = 0; i < 8; i = i + 1) {
        hits[i] = 0;
        if (i % 2 == 0) { enabled[i] = 1; } else { enabled[i] = 0; }
    }
}

fn allow(int svc) -> int {
    if (svc < 0 || svc >= 8) { return 0; }
    if (enabled[svc] == 0) { return 0; }
    if (hits[svc] >= rate_cap) { return 0; }
    return 1;
}

fn serve(int svc, int arg) -> int {
    hits[svc] = hits[svc] + 1;
    if (svc == 0) { return arg + 1; }
    if (svc == 2) { return arg * 2; }
    if (svc == 4) { return arg - 1; }
    return arg;
}

fn name_ok(int *p) -> int {
    // Service names must be lowercase ASCII over the whole buffer window.
    int k;
    for (k = 0; k < 6; k = k + 1) {
        if (p[k] != 0) {
            if (p[k] < 'a' || p[k] > 'z') { return 0; }
        }
    }
    return 1;
}

fn main() -> int {
    int svc; int arg; int reqs; int running; int res; int ok; int strict;
    int violations;
    int name[6];
    init_services();
    running = 1; reqs = 0; strict = 1; violations = 0;
    while (running == 1 && reqs < 64) {
        reqs = reqs + 1;
        // Malformed requests are counted; three strikes ends the session.
        if (violations > 2) { running = 0; }
        svc = read_int();
        if (svc < 0) {
            running = 0;
        } else {
            // VULN: service name logging buffer (6 cells, 12 allowed).
            read_str(name, 12);
            arg = read_int();
            ok = name_ok(name);
            if (ok == 0) { svc = -2; violations = violations + 1; }
            // Internal services (names starting 'x') bypass rate limiting.
            if (ok == 1 && name[0] == 'x' && svc >= 0 && svc < 8) {
                if (enabled[svc] == 1) { hits[svc] = 0; }
            }
            if (allow(svc) == 1) {
                res = serve(svc, arg);
                print_int(res);
            } else {
                if (strict == 1) { print_int(-1); } else { print_int(0); }
            }
            // The strict flag is re-tested: must agree with the branch above.
            if (strict == 1) {
                if (svc >= 8) { running = 0; }
            }
        }
    }
    return reqs;
}
"#;

/// crond — job table with range-validated specs and a tick loop (buffer
/// overflow in the job command buffer).
pub const CROND: &str = r#"
// crond: load job specs, then simulate time ticks firing matching jobs.
int job_min[4];
int job_owner[4];
int job_live[4];
int fired;
int jobs_accepted;

fn valid_minute(int m) -> int {
    if (m >= 0 && m < 60) { return 1; }
    return 0;
}

fn flush_spool(int count) -> int {
    int compat;
    // The legacy spool format rewrote the accepted-job count in place
    // while flushing; modern crond pins the compat shim off at build
    // time, so the rewrite below is dead code on every feasible path.
    compat = 0;
    if (compat == 1) { jobs_accepted = 0 - count; }
    print_int(count);
    return count;
}

fn cmd_safe(int *c) -> int {
    // Crontab command sanitizer: the full fixed-size buffer must be free
    // of shell metacharacters and control bytes.
    int k;
    for (k = 0; k < 6; k = k + 1) {
        if (c[k] < 0 || c[k] > 126) { return 0; }
        if (c[k] == ';' || c[k] == '|' || c[k] == '`') { return 0; }
    }
    return 1;
}

fn main() -> int {
    int n; int i; int m; int owner; int tick; int limit; int safe;
    int allow_user; int verbose;
    int cmdbuf[6];
    fired = 0;
    allow_user = 1;
    verbose = 1;
    n = read_int();
    if (n < 0) { n = 0; }
    if (n > 4) { n = 4; }
    for (i = 0; i < n; i = i + 1) {
        m = read_int();
        owner = read_int();
        // VULN: job command text (8 cells, 16 allowed). Commands starting
        // with 'r' (reboot/rm) are root-only regardless of owner.
        read_str(cmdbuf, 12);
        safe = cmd_safe(cmdbuf);
        if (safe == 0) {
            job_live[i] = 0;
        } else if (cmdbuf[0] == 'r' && owner != 0) {
            job_live[i] = 0;
        } else if (valid_minute(m) == 1) {
            if (owner == 0 || allow_user == 1) {
                job_min[i] = m;
                job_owner[i] = owner;
                job_live[i] = 1;
            } else {
                job_live[i] = 0;
            }
        } else {
            job_live[i] = 0;
        }
    }
    // Flush the accepted spool and sanity-check the count against the
    // table size before ticking.
    jobs_accepted = n;
    flush_spool(jobs_accepted);
    if (jobs_accepted > 4) { return 0 - jobs_accepted; }
    limit = read_int();
    if (limit < 0) { limit = 0; }
    if (limit > 30) { limit = 30; }
    for (tick = 0; tick < limit; tick = tick + 1) {
        for (i = 0; i < 4; i = i + 1) {
            if (job_live[i] == 1) {
                if (job_min[i] == tick % 60) {
                    // The user-job policy is re-checked at fire time and
                    // must agree with load-time validation.
                    if (job_owner[i] != 0 && allow_user == 0) {
                        fired = fired + 0;
                    } else {
                        // Root jobs print their owner.
                        if (job_owner[i] == 0) { print_int(1000 + i); }
                        else { print_int(i); }
                        fired = fired + 1;
                        if (verbose == 1) { print_int(tick); }
                    }
                }
            }
        }
        if (verbose == 1) {
            if (tick % 10 == 9) { print_int(-1 - tick); }
        }
        if (fired > 50) { return fired; }
    }
    return fired;
}
"#;

/// sysklogd — facility/severity filtering with per-facility thresholds and
/// rotation (format-string class).
pub const SYSKLOGD: &str = r#"
// sysklogd: severity filtering, per-facility output counters, rotation.
int threshold[4];
int written[4];
int rotate_at = 10;
int rotations;
int drop_count;

fn init_conf() {
    threshold[0] = 3;
    threshold[1] = 5;
    threshold[2] = 1;
    threshold[3] = 7;
    rotations = 0;
    drop_count = 0;
}

fn rotate(int fac) {
    written[fac] = 0;
    rotations = rotations + 1;
}

fn printable(int *m) -> int {
    // The whole message buffer is scanned before it is written out; a
    // single control byte anywhere poisons the line.
    int k;
    for (k = 0; k < 6; k = k + 1) {
        if (m[k] < 0 || m[k] > 126) { return 0; }
    }
    return 1;
}

fn main() -> int {
    int fac; int sev; int reqs; int running; int console; int marks; int clean;
    int violations;
    int msg[6];
    init_conf();
    console = read_int();
    if (console != 1) { console = 0; }
    running = 1; reqs = 0; marks = 0; violations = 0;
    while (running == 1 && reqs < 96) {
        reqs = reqs + 1;
        fac = read_int();
        if (fac < 0) {
            running = 0;
        } else {
            // Too many rotations means a runaway logger: bail out. The
            // counter rarely moves but is tested on every message.
            if (rotations > 50) { running = 0; }
            if (violations > 3) { running = 0; }
            sev = read_int();
            // VULN (format-string class): message text into a fixed buffer.
            read_str(msg, 12);
            clean = printable(msg);
            // kern-style '!' prefix forces emergency severity.
            if (msg[0] == '!') { sev = 0; }
            if (clean == 0) {
                violations = violations + 1;
                drop_count = drop_count + 1;
            } else if (fac >= 4) {
                drop_count = drop_count + 1;
            } else {
                if (sev <= threshold[fac]) {
                    written[fac] = written[fac] + 1;
                    print_int(fac * 10 + sev);
                    // Emergencies also hit the console when configured; this
                    // console test repeats below and must agree.
                    if (sev == 0) {
                        if (console == 1) { print_int(-100); }
                    }
                    if (written[fac] >= rotate_at) {
                        rotate(fac);
                    }
                } else {
                    drop_count = drop_count + 1;
                }
            }
            // Periodic MARK lines go to the console too; the console
            // flag is consulted on every message.
            if (console == 1) {
                if (reqs % 10 == 0) {
                    marks = marks + 1;
                    print_int(-200);
                }
            } else {
                if (reqs % 10 == 0) { marks = marks + 1; }
            }
        }
    }
    print_int(rotations);
    print_int(drop_count);
    print_int(marks);
    return drop_count;
}
"#;

/// atftpd — TFTP with read/write requests, a block-transfer loop and a
/// write-protection flag (buffer overflow in the filename buffer).
pub const ATFTPD: &str = r#"
// atftpd: RRQ/WRQ handling with retries and write protection.
int total_blocks;
int timeouts;

fn transfer(int blocks) -> int {
    int b; int acked;
    acked = 0;
    if (blocks > 16) { blocks = 16; }
    for (b = 0; b < blocks; b = b + 1) {
        // Every eighth block needs a retry.
        if (b % 8 == 7) { timeouts = timeouts + 1; }
        acked = acked + 1;
    }
    total_blocks = total_blocks + acked;
    return acked;
}

fn fname_ok(int *p) -> int {
    // TFTP filenames: netascii only, across the whole buffer window.
    int k;
    for (k = 0; k < 6; k = k + 1) {
        if (p[k] < 0 || p[k] > 126) { return 0; }
    }
    return 1;
}

fn main() -> int {
    int op; int reqs; int running; int blocks; int mode; int ok;
    int write_protect; int violations;
    int fname[6];
    total_blocks = 0; timeouts = 0;
    running = 1; reqs = 0; write_protect = 1; violations = 0;
    while (running == 1 && reqs < 48) {
        reqs = reqs + 1;
        // Give up when the retry budget is gone; checked per request but
        // only bumped inside long transfers.
        if (timeouts > 30) { running = 0; }
        if (violations > 2) { running = 0; }
        op = read_int();
        if (op == 0) {
            running = 0;
        } else if (op == 1) {
            // RRQ. VULN: filename (8 cells, 16 allowed). Dotfiles are
            // refused before the mode is even parsed.
            read_str(fname, 12);
            mode = read_int();
            ok = fname_ok(fname);
            if (ok == 0) {
                violations = violations + 1;
                print_int(-7);
            } else if (fname[0] == '.') {
                print_int(-6);
            } else if (mode == 1 || mode == 2) {
                blocks = read_int();
                print_int(transfer(blocks));
            } else {
                print_int(-3);
            }
        } else if (op == 2) {
            // WRQ: refused while write-protected; tested twice, must agree.
            read_str(fname, 12);
            ok = fname_ok(fname);
            if (ok == 0) {
                violations = violations + 1;
                print_int(-7);
            } else if (write_protect == 1) {
                print_int(-4);
            } else {
                blocks = read_int();
                print_int(transfer(blocks));
            }
            if (write_protect == 1) { timeouts = timeouts + 0; }
            else { print_int(1); }
        } else {
            print_int(-5);
        }
    }
    print_int(total_blocks);
    return timeouts;
}
"#;

/// httpd — request routing with method checks, an auth realm and keep-alive
/// accounting (buffer overflow in the path buffer).
pub const HTTPD: &str = r#"
// httpd: method/path routing, basic auth, keep-alive.
int keepalive_max = 24;
int served;
int auth_realm = 1;

fn route(int first) -> int {
    // Path classes: 0 static, 1 cgi, 2 admin, 3 not found.
    if (first == 's') { return 0; }
    if (first == 'c') { return 1; }
    if (first == 'a') { return 2; }
    return 3;
}

fn traversal_free(int *p) -> int {
    // Directory-traversal check over the whole path buffer: no '.', no
    // backslashes, no control bytes anywhere.
    int k;
    for (k = 0; k < 6; k = k + 1) {
        if (p[k] == '.' || p[k] == 92) { return 0; }
        if (p[k] < 0 || p[k] > 126) { return 0; }
    }
    return 1;
}

fn main() -> int {
    int method; int token; int reqs; int alive; int cls; int authed; int safe;
    int cgi_on; int auth_reqs; int violations;
    int path[6];
    served = 0; reqs = 0; alive = 1; cgi_on = 1; auth_reqs = 0; violations = 0;
    token = read_int();
    if (token == 4242) { authed = 1; } else { authed = 0; }
    while (alive == 1 && reqs < keepalive_max) {
        reqs = reqs + 1;
        // Authenticated sessions are counted per request; authed never
        // changes after the header was parsed.
        if (authed == 1) { auth_reqs = auth_reqs + 1; }
        if (auth_reqs > 90) { alive = 0; }
        if (violations > 2) { alive = 0; }
        method = read_int();
        if (method == 0) {
            alive = 0;
        } else {
            // VULN: request path (8 cells, 16 allowed).
            read_str(path, 12);
            safe = traversal_free(path);
            cls = route(path[0]);
            if (safe == 0) {
                violations = violations + 1;
                print_int(400);
            } else if (method == 1) {
                // GET
                if (cls == 0) { print_int(200); served = served + 1; }
                else if (cls == 1) {
                    if (cgi_on == 1) { print_int(201); served = served + 1; }
                    else { print_int(503); }
                }
                else if (cls == 2) {
                    // Admin requires auth — tested here...
                    if (authed == 1) { print_int(202); }
                    else { print_int(401); }
                }
                else { print_int(404); }
            } else if (method == 2) {
                // POST: only CGI and admin accept bodies.
                if (cls == 1) {
                    if (cgi_on == 1) { print_int(203); served = served + 1; }
                    else { print_int(503); }
                }
                else if (cls == 2) {
                    // ...and the same auth state is tested again here.
                    if (authed == 1) { print_int(204); }
                    else { print_int(401); }
                }
                else { print_int(405); }
            } else {
                print_int(501);
            }
        }
    }
    print_int(served);
    return served;
}
"#;

/// sendmail — SMTP state machine with relay checks and recipient limits
/// (buffer overflow in the address buffer).
pub const SENDMAIL: &str = r#"
// sendmail: HELO/MAIL/RCPT/DATA/QUIT with state tracking and relay policy.
int max_rcpt = 5;
int delivered;

fn local_domain(int d) -> int {
    if (d == 10 || d == 11) { return 1; }
    return 0;
}

fn addr_ok(int *a) -> int {
    // RFC-ish address check over the whole buffer: printable, no spaces,
    // no angle brackets left behind.
    int k;
    for (k = 0; k < 6; k = k + 1) {
        if (a[k] < 0 || a[k] > 126) { return 0; }
        if (a[k] == ' ' || a[k] == '<' || a[k] == '>') { return 0; }
    }
    return 1;
}

fn main() -> int {
    int state; int cmd; int reqs; int rcpts; int dom; int running; int good;
    int relay_ok; int violations;
    int addr[6];
    relay_ok = 0; delivered = 0; violations = 0;
    state = 0; rcpts = 0; running = 1; reqs = 0;
    while (running == 1 && reqs < 64) {
        reqs = reqs + 1;
        // Delivery quota: rarely advanced, tested on every command.
        if (delivered > 90) { running = 0; }
        if (violations > 3) { running = 0; }
        // Relay decisions are logged per command for trusted peers.
        if (relay_ok == 1) { print_int(1); }
        cmd = read_int();
        if (cmd == 0) {
            running = 0;
        } else if (cmd == 1) {
            // HELO: trusted peers may relay.
            dom = read_int();
            if (dom == 10) { relay_ok = 1; }
            if (state == 0) { state = 1; print_int(250); }
            else { print_int(503); }
        } else if (cmd == 2) {
            // MAIL FROM: the null sender "<>" (here: '-') only for bounces.
            read_str(addr, 12);
            good = addr_ok(addr);
            if (good == 0) {
                violations = violations + 1;
                print_int(501);
            } else if (state == 1) {
                state = 2; rcpts = 0;
                if (addr[0] == '-') { print_int(251); } else { print_int(250); }
            }
            else { print_int(503); }
        } else if (cmd == 3) {
            // RCPT TO: relay policy re-tested per recipient.
            dom = read_int();
            read_str(addr, 12);
            good = addr_ok(addr);
            if (good == 0) {
                violations = violations + 1;
                print_int(501);
            } else if (state == 2) {
                if (addr[0] == 'p' && strcmp(addr, "postmaster") == 0) {
                    // postmaster is always deliverable.
                    rcpts = rcpts + 1; print_int(250);
                } else if (local_domain(dom) == 1 || relay_ok == 1) {
                    if (rcpts < max_rcpt) { rcpts = rcpts + 1; print_int(250); }
                    else { print_int(452); }
                } else {
                    print_int(554);
                }
            } else { print_int(503); }
        } else if (cmd == 4) {
            // DATA
            if (state == 2 && rcpts > 0) {
                delivered = delivered + rcpts;
                state = 1;
                print_int(354);
            } else { print_int(503); }
        } else {
            print_int(500);
        }
    }
    print_int(delivered);
    return delivered;
}
"#;

/// sshd — bounded auth attempts, method negotiation, privilege separation
/// and a channel loop (buffer overflow in the banner buffer).
pub const SSHD: &str = r#"
// sshd: auth attempt loop, privilege separation, channel requests.
int max_attempts = 3;
int sessions;

fn try_password(int user, int pass) -> int {
    if (user == 7 && pass == 2468) { return 1; }
    return 0;
}

fn try_pubkey(int user, int key) -> int {
    if (user == 7 && key == 1357) { return 1; }
    if (user == 9 && key == 8642) { return 1; }
    return 0;
}

fn banner_ok(int *b) -> int {
    // Protocol banner must be clean ASCII over the whole window.
    int k;
    for (k = 0; k < 6; k = k + 1) {
        if (b[k] < 0 || b[k] > 126) { return 0; }
    }
    return 1;
}

fn main() -> int {
    int attempts; int authed; int user; int method; int cred;
    int cmd; int reqs; int running; int is_root; int priv_sep;
    int root_ops;
    int banner[6];
    sessions = 0;
    attempts = 0; authed = 0; is_root = 0; priv_sep = 1;
    // VULN: client banner (8 cells, 16 allowed). Ancient clients are
    // refused outright.
    read_str(banner, 12);
    if (banner_ok(banner) == 0) {
        print_int(253);
        return 253;
    }
    if (banner[0] == '1') {
        print_int(254);
        return 254;
    }
    while (attempts < max_attempts && authed == 0) {
        attempts = attempts + 1;
        user = read_int();
        method = read_int();
        cred = read_int();
        if (method == 1) {
            if (try_password(user, cred) == 1) { authed = 1; }
        } else if (method == 2) {
            if (try_pubkey(user, cred) == 1) { authed = 1; }
        }
        if (authed == 1 && user == 0) { is_root = 1; }
    }
    if (authed == 0) {
        print_int(255);
        return 255;
    }
    print_int(0);
    running = 1; reqs = 0; root_ops = 0;
    while (running == 1 && reqs < 48) {
        reqs = reqs + 1;
        // Root activity is audited on every channel request; is_root is
        // fixed at auth time, so these tests must all agree.
        if (is_root == 1) { root_ops = root_ops + 1; }
        if (root_ops > 40) { running = 0; }
        cmd = read_int();
        if (cmd == 0) {
            running = 0;
        } else if (cmd == 1) {
            // Shell channel: root shells bypass priv-sep sandboxing. Both
            // tests of is_root must agree.
            if (is_root == 1) { print_int(100); }
            else {
                if (priv_sep == 1) { print_int(101); } else { print_int(102); }
            }
            sessions = sessions + 1;
        } else if (cmd == 2) {
            // Port forward: root only.
            if (is_root == 1) { print_int(110); sessions = sessions + 1; }
            else { print_int(-1); }
        } else {
            print_int(-2);
        }
    }
    print_int(sessions);
    return sessions;
}
"#;

/// portmap — RPC program→port registry with superuser-only mutation
/// (buffer overflow in the owner-name buffer).
pub const PORTMAP: &str = r#"
// portmap: SET/UNSET/GETPORT/DUMP over a fixed registry.
int prog[8];
int port[8];
int in_use[8];
int su;

fn find_slot(int p) -> int {
    int i;
    for (i = 0; i < 8; i = i + 1) {
        if (in_use[i] == 1 && prog[i] == p) { return i; }
    }
    return -1;
}

fn free_slot() -> int {
    int i;
    for (i = 0; i < 8; i = i + 1) {
        if (in_use[i] == 0) { return i; }
    }
    return -1;
}

fn owner_ok(int *o) -> int {
    // Owner names: lowercase ASCII across the whole window.
    int k;
    for (k = 0; k < 6; k = k + 1) {
        if (o[k] != 0) {
            if (o[k] < 'a' || o[k] > 'z') {
                if (o[k] != '_') { return 0; }
            }
        }
    }
    return 1;
}

fn main() -> int {
    int cmd; int p; int pt; int reqs; int running; int slot; int okname;
    int audits; int violations;
    int owner[6];
    audits = 0; violations = 0;
    su = read_int();
    if (su != 1) { su = 0; }
    running = 1; reqs = 0;
    while (running == 1 && reqs < 64) {
        reqs = reqs + 1;
        // Privileged sessions are audited on every request; this su test
        // must agree with the per-command checks below.
        if (su == 1) { audits = audits + 1; }
        if (audits > 70) { running = 0; }
        if (violations > 2) { running = 0; }
        cmd = read_int();
        if (cmd == 0) {
            running = 0;
        } else if (cmd == 1) {
            // SET: superuser only. VULN: owner name (6 cells, 12 allowed).
            p = read_int();
            pt = read_int();
            read_str(owner, 12);
            okname = owner_ok(owner);
            // Reserved owner names (leading '_') and malformed names are
            // rejected even for the superuser.
            if (okname == 0) {
                violations = violations + 1;
                print_int(-4);
            } else if (owner[0] == '_') {
                print_int(-3);
            } else if (su == 1) {
                slot = find_slot(p);
                if (slot < 0) { slot = free_slot(); }
                if (slot >= 0) {
                    prog[slot] = p;
                    port[slot] = pt;
                    in_use[slot] = 1;
                    print_int(1);
                } else { print_int(0); }
            } else {
                print_int(-1);
            }
        } else if (cmd == 2) {
            // UNSET: the same su test must agree with SET's.
            p = read_int();
            if (su == 1) {
                slot = find_slot(p);
                if (slot >= 0) { in_use[slot] = 0; print_int(1); }
                else { print_int(0); }
            } else {
                print_int(-1);
            }
        } else if (cmd == 3) {
            // GETPORT: open to everyone.
            p = read_int();
            slot = find_slot(p);
            if (slot >= 0) { print_int(port[slot]); }
            else { print_int(0); }
        } else if (cmd == 4) {
            // DUMP
            slot = 0;
            while (slot < 8) {
                if (in_use[slot] == 1) { print_int(prog[slot]); }
                slot = slot + 1;
            }
        } else {
            print_int(-2);
        }
    }
    print_int(audits);
    return reqs;
}
"#;

/// connpool — a connection-pool broker built around `struct Conn`
/// session records passed by pointer to helpers (extended suite; exercises
/// struct member access through both `.` and `->`).
pub const CONNPOOL: &str = r#"
// connpool: per-session connection records as structs, helpers take
// struct pointers. Auth and quota flags are re-tested at use sites (the
// correlation idiom), and the peer-name buffer is the overflow surface.
struct Conn {
    int state;
    int owner;
    int sent;
}

int total_sent;
int sessions;

fn conn_reset(struct Conn *c) {
    c->state = 0;
    c->owner = -1;
    c->sent = 0;
}

fn conn_open(struct Conn *c, int owner, int authed) -> int {
    if (authed == 0 && owner != 0) { return 0; }
    c->state = 1;
    c->owner = owner;
    return 1;
}

fn conn_send(struct Conn *c, int n, int quota) -> int {
    if (c->state != 1) { return 0; }
    if (n < 0) { return 0; }
    if (c->sent + n > quota && c->owner != 0) { return 0; }
    c->sent = c->sent + n;
    return n;
}

fn main() -> int {
    struct Conn conn;
    int authed; int quota; int cmd; int arg; int ok; int guard;
    int peer[6];
    authed = 0;
    quota = 64;
    total_sent = 0;
    sessions = 0;
    conn_reset(&conn);
    if (read_int() == 1) {
        if (read_int() == 4242) { authed = 1; }
    }
    guard = 0;
    while (guard < 200) {
        guard = guard + 1;
        cmd = read_int();
        if (cmd == 0) { break; }
        if (cmd == 1) {
            arg = read_int();
            ok = conn_open(&conn, arg, authed);
            if (ok == 1) { sessions = sessions + 1; }
            else { print_int(-1); }
        } else if (cmd == 2) {
            arg = read_int();
            ok = conn_send(&conn, arg, quota);
            // Privileged owners bypass quota; the check must agree with
            // the one inside conn_send.
            if (ok > 0 && (conn.owner == 0 || conn.sent <= quota)) {
                total_sent = total_sent + ok;
            }
        } else if (cmd == 3) {
            // VULN: peer name is 6 cells but 12 are allowed through.
            read_str(peer, 12);
            if (peer[0] == 'r' && authed == 0) { print_int(-2); }
            else { print_int(peer[0]); }
        } else if (cmd == 4) {
            if (conn.state == 1) {
                print_int(conn.sent);
            } else {
                print_int(0);
            }
            conn_reset(&conn);
        }
    }
    print_int(total_sent);
    print_int(sessions);
    return sessions;
}
"#;

/// statsd — metric accumulators as structs with pointer-to-member hot
/// fields (extended suite; exercises `&s.f` pointers to members).
pub const STATSD: &str = r#"
// statsd: two struct accumulators updated through helpers, a hot-field
// pointer taken with &acc.count, and a tag buffer overflow surface.
struct Acc {
    int count;
    int sum;
    int peak;
}

int flushes;

fn acc_reset(struct Acc *a) {
    a->count = 0;
    a->sum = 0;
    a->peak = 0;
}

fn acc_add(struct Acc *a, int v, int cap) -> int {
    if (v < 0) { return 0; }
    if (a->count >= cap) { return 0; }
    a->count = a->count + 1;
    a->sum = a->sum + v;
    if (v > a->peak) { a->peak = v; }
    return 1;
}

fn main() -> int {
    struct Acc fast;
    struct Acc slow;
    int cmd; int v; int cap; int admin; int guard; int *hot;
    int tag[6];
    admin = 0;
    cap = 32;
    flushes = 0;
    acc_reset(&fast);
    acc_reset(&slow);
    if (read_int() == 7) { admin = 1; }
    // Pointer to the hot field: bumped directly on the fast path.
    hot = &fast.count;
    guard = 0;
    while (guard < 200) {
        guard = guard + 1;
        cmd = read_int();
        if (cmd == 0) { break; }
        if (cmd == 1) {
            v = read_int();
            if (acc_add(&fast, v, cap) == 0) {
                if (admin == 1) {
                    // Admin overrides the cap; mirror of the helper check.
                    fast.sum = fast.sum + v;
                    *hot = *hot + 1;
                } else {
                    print_int(-1);
                }
            }
        } else if (cmd == 2) {
            v = read_int();
            if (acc_add(&slow, v, cap * 4) == 1) {
                if (slow.peak > 100 && admin == 0) { print_int(-2); }
            }
        } else if (cmd == 3) {
            // VULN: tag is 6 cells but 12 are allowed through.
            read_str(tag, 12);
            print_int(tag[0]);
        } else if (cmd == 4) {
            print_int(fast.sum + slow.sum);
            print_int(fast.peak);
            if (fast.count > 0 || slow.count > 0) { flushes = flushes + 1; }
            acc_reset(&fast);
            acc_reset(&slow);
        }
    }
    print_int(flushes);
    return flushes;
}
"#;
