//! Microbenchmark kernels for characterizing the timing model and the IPDS
//! engine independent of the server workloads.
//!
//! Each kernel stresses one axis: branch density (checker pressure),
//! call depth (table-stack spills), memory footprint (cache behaviour),
//! and correlation density (BAT walk length). They are used by the ablation
//! benches and the timing-model tests.

use ipds_sim::Input;

/// A named microbenchmark.
#[derive(Debug, Clone)]
pub struct Micro {
    /// Kernel name.
    pub name: &'static str,
    /// MiniC source.
    pub source: &'static str,
    /// What it stresses (for reports).
    pub stresses: &'static str,
}

/// Branch-dense kernel: almost every instruction is a correlated test.
pub const BRANCH_STORM: &str = r#"
fn main() -> int {
    int a; int b; int c; int i; int acc;
    a = read_int(); b = read_int(); c = read_int();
    acc = 0;
    for (i = 0; i < 200; i = i + 1) {
        if (a < 10) { acc = acc + 1; }
        if (a < 20) { acc = acc + 1; }
        if (b == 0) { acc = acc + 1; }
        if (b == 0) { acc = acc - 1; }
        if (c > 5) { acc = acc + 2; }
        if (c > 0) { acc = acc + 1; }
    }
    return acc;
}
"#;

/// Deep call chains: pushes/pops table frames constantly.
pub const CALL_LADDER: &str = r#"
fn l5(int n) -> int { if (n <= 0) { return 0; } return n; }
fn l4(int n) -> int { if (n <= 0) { return 0; } return l5(n - 1) + 1; }
fn l3(int n) -> int { if (n <= 0) { return 0; } return l4(n - 1) + 1; }
fn l2(int n) -> int { if (n <= 0) { return 0; } return l3(n - 1) + 1; }
fn l1(int n) -> int { if (n <= 0) { return 0; } return l2(n - 1) + 1; }
fn main() -> int {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 100; i = i + 1) {
        acc = acc + l1(5);
    }
    return acc;
}
"#;

/// Deep recursion: maximizes stacked frames (spill pressure).
pub const RECURSION: &str = r#"
fn down(int n) -> int {
    if (n <= 0) { return 0; }
    return down(n - 1) + 1;
}
fn main() -> int {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 10; i = i + 1) {
        acc = acc + down(120);
    }
    return acc;
}
"#;

/// Streaming memory: large array walks (cache behaviour dominates).
pub const MEM_STREAM: &str = r#"
int data[512];
fn main() -> int {
    int i; int pass; int acc;
    acc = 0;
    for (pass = 0; pass < 8; pass = pass + 1) {
        for (i = 0; i < 512; i = i + 1) {
            data[i] = data[i] + i;
        }
        for (i = 0; i < 512; i = i + 1) {
            acc = acc + data[i];
        }
    }
    return acc;
}
"#;

/// Straight-line arithmetic: almost no branches (checker mostly idle).
pub const ALU_BOUND: &str = r#"
fn main() -> int {
    int a; int b; int c; int d; int i;
    a = read_int(); b = a + 1; c = b * 3; d = c - a;
    for (i = 0; i < 300; i = i + 1) {
        a = a + b;
        b = b ^ c;
        c = c + d;
        d = d * 2;
        a = a - d;
        b = b + 7;
        c = c % 1000000;
        d = d % 1000000;
    }
    return a + b + c + d;
}
"#;

/// All kernels.
pub fn all_micros() -> Vec<Micro> {
    vec![
        Micro {
            name: "branch_storm",
            source: BRANCH_STORM,
            stresses: "checker throughput / queue pressure",
        },
        Micro {
            name: "call_ladder",
            source: CALL_LADDER,
            stresses: "table-stack push/pop",
        },
        Micro {
            name: "recursion",
            source: RECURSION,
            stresses: "stack depth / spills",
        },
        Micro {
            name: "mem_stream",
            source: MEM_STREAM,
            stresses: "cache hierarchy",
        },
        Micro {
            name: "alu_bound",
            source: ALU_BOUND,
            stresses: "baseline IPC",
        },
    ]
}

/// Default inputs for a kernel (they read at most 3 integers).
pub fn micro_inputs() -> Vec<Input> {
    vec![Input::Int(3), Input::Int(0), Input::Int(9)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipds_sim::{ExecLimits, ExecStatus, Interp, NullObserver};

    #[test]
    fn all_micros_compile_and_terminate() {
        for m in all_micros() {
            let p = ipds_ir::parse(m.source).unwrap_or_else(|e| panic!("{}: {e}", m.name));
            let mut i = Interp::new(&p, micro_inputs(), ExecLimits::default());
            let status = i.run(&mut NullObserver);
            assert!(
                matches!(status, ExecStatus::Exited(_)),
                "{}: {status:?}",
                m.name
            );
        }
    }

    #[test]
    fn kernels_have_their_advertised_shapes() {
        let stats = |src: &str| {
            let p = ipds_ir::parse(src).unwrap();
            let branches = p.branch_count() as f64;
            let insts = p.inst_count() as f64;
            (branches / insts, p.functions.len())
        };
        let (storm_density, _) = stats(BRANCH_STORM);
        let (alu_density, _) = stats(ALU_BOUND);
        assert!(
            storm_density > 2.0 * alu_density,
            "branch_storm {storm_density:.3} vs alu {alu_density:.3}"
        );
        let (_, ladder_fns) = stats(CALL_LADDER);
        assert_eq!(ladder_fns, 6);
    }
}
