//! Random terminating MiniC programs for property testing.
//!
//! The zero-false-positive guarantee must hold for *any* program, not just
//! the hand-written suite, so the property tests generate random programs
//! here and assert that clean executions never alarm. Generated programs
//!
//! * always terminate (loops use dedicated, monotonically increasing
//!   counters that no other statement assigns),
//! * never fault (all memory accesses are through named scalars, in-bounds
//!   array indices, or `&var` pointers), and
//! * are branch-rich with shared variables so correlations actually form.

use ipds_sim::rng::StdRng;

/// Tuning for the program generator.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Scalar variables available to statements.
    pub num_vars: u32,
    /// Statements per block (upper bound).
    pub max_stmts: u32,
    /// Maximum nesting depth of `if`/`while`.
    pub max_depth: u32,
    /// Loop bound for generated `while` loops.
    pub loop_bound: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            num_vars: 5,
            max_stmts: 6,
            max_depth: 3,
            loop_bound: 4,
        }
    }
}

struct Gen {
    rng: StdRng,
    cfg: GenConfig,
    out: String,
    counters: u32,
    indent: usize,
}

impl Gen {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn var(&mut self) -> String {
        format!("v{}", self.rng.gen_range(0..self.cfg.num_vars))
    }

    fn expr(&mut self) -> String {
        match self.rng.gen_range(0..6) {
            0 => format!("{}", self.rng.gen_range(-20..20)),
            1 => self.var(),
            2 => format!("{} + {}", self.var(), self.rng.gen_range(1..5)),
            3 => format!("{} - {}", self.var(), self.rng.gen_range(1..5)),
            4 => "read_int()".to_string(),
            _ => {
                let a = self.var();
                let b = self.var();
                format!("calc({a}, {b})")
            }
        }
    }

    fn cond(&mut self) -> String {
        let v = self.var();
        let op = ["<", "<=", ">", ">=", "==", "!="][self.rng.gen_range(0..6usize)];
        let c = self.rng.gen_range(-10..10);
        match self.rng.gen_range(0..4) {
            // Fig. 3.c-style arithmetic in the condition.
            0 => format!("{v} - 1 {op} {c}"),
            _ => format!("{v} {op} {c}"),
        }
    }

    fn stmt(&mut self, depth: u32) {
        match self.rng.gen_range(0..10) {
            0..=3 => {
                let v = self.var();
                let e = self.expr();
                self.line(&format!("{v} = {e};"));
            }
            4 => {
                let v = self.var();
                self.line(&format!("print_int({v});"));
            }
            5 => {
                let v = self.var();
                self.line(&format!("poke(&{v}, read_int());"));
            }
            6..=8 if depth < self.cfg.max_depth => {
                let c = self.cond();
                self.line(&format!("if ({c}) {{"));
                self.indent += 1;
                self.block(depth + 1);
                self.indent -= 1;
                if self.rng.gen_bool(0.5) {
                    self.line("} else {");
                    self.indent += 1;
                    self.block(depth + 1);
                    self.indent -= 1;
                }
                self.line("}");
            }
            9 if depth < self.cfg.max_depth => {
                // Bounded loop with a dedicated counter that nothing else
                // writes.
                let k = self.counters;
                self.counters += 1;
                let c = self.cond();
                let bound = self.cfg.loop_bound;
                self.line(&format!("c{k} = 0;"));
                self.line(&format!("while (c{k} < {bound} && ({c})) {{"));
                self.indent += 1;
                self.line(&format!("c{k} = c{k} + 1;"));
                self.block(depth + 1);
                self.indent -= 1;
                self.line("}");
            }
            _ => {
                let v = self.var();
                self.line(&format!("{v} = {v} + 1;"));
            }
        }
    }

    fn block(&mut self, depth: u32) {
        let n = self.rng.gen_range(1..=self.cfg.max_stmts);
        for _ in 0..n {
            self.stmt(depth);
        }
    }
}

/// Counts how many loop counters a config can possibly emit (used to
/// pre-declare them).
fn max_counters(cfg: &GenConfig) -> u32 {
    // Generous upper bound: one per statement slot in the whole tree.
    let mut total = 1u32;
    for _ in 0..cfg.max_depth {
        total = total.saturating_mul(cfg.max_stmts + 1);
    }
    total.min(256)
}

/// Generates a self-contained MiniC program from a seed.
///
/// The result always parses, always terminates and never faults on any
/// input stream (see module docs); programs differ in shape with the seed.
pub fn generate_program(seed: u64, cfg: GenConfig) -> String {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        cfg,
        out: String::new(),
        counters: 0,
        indent: 0,
    };
    g.line("// auto-generated property-test program");
    g.line("int g0;");
    g.line("int g1 = 3;");
    g.line("fn poke(int *p, int v) { *p = v; }");
    g.line("fn calc(int a, int b) -> int {");
    g.indent = 1;
    g.line("if (a < b) { return b - a; }");
    g.line("if (a == b) { return a; }");
    g.line("return a - b;");
    g.indent = 0;
    g.line("}");
    g.line("fn main() -> int {");
    g.indent = 1;
    let pre_counters = max_counters(&g.cfg);
    for i in 0..g.cfg.num_vars {
        g.line(&format!("int v{i};"));
    }
    for k in 0..pre_counters {
        g.line(&format!("int c{k};"));
    }
    for i in 0..g.cfg.num_vars {
        let init = if g.rng.gen_bool(0.5) {
            "read_int()".to_string()
        } else {
            format!("{}", g.rng.gen_range(-10..10))
        };
        g.line(&format!("v{i} = {init};"));
    }
    g.block(0);
    // Mix globals in, touching the same variables again.
    g.line("g0 = v0;");
    g.line("if (g0 < 5) { print_int(g0); }");
    g.line("if (g0 < 5) { print_int(1); } else { print_int(2); }");
    g.line("return v0;");
    g.indent = 0;
    g.line("}");
    assert!(
        g.counters <= pre_counters,
        "generator used more counters than declared"
    );
    g.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipds_sim::{ExecLimits, ExecStatus, Input, Interp, NullObserver};

    #[test]
    fn generated_programs_parse() {
        for seed in 0..40 {
            let src = generate_program(seed, GenConfig::default());
            let p = ipds_ir::parse(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            assert!(p.branch_count() >= 2, "seed {seed} too simple");
        }
    }

    #[test]
    fn generated_programs_terminate_cleanly() {
        for seed in 0..40 {
            let src = generate_program(seed, GenConfig::default());
            let p = ipds_ir::parse(&src).unwrap();
            let inputs: Vec<Input> = (0..64)
                .map(|i| Input::Int((seed as i64 * 7 + i) % 23 - 11))
                .collect();
            let mut interp = Interp::new(
                &p,
                inputs,
                ExecLimits {
                    max_steps: 2_000_000,
                    max_depth: 64,
                },
            );
            let status = interp.run(&mut NullObserver);
            assert!(
                matches!(status, ExecStatus::Exited(_)),
                "seed {seed} ended with {status:?}\n{src}"
            );
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = generate_program(9, GenConfig::default());
        let b = generate_program(9, GenConfig::default());
        assert_eq!(a, b);
        let c = generate_program(10, GenConfig::default());
        assert_ne!(a, c);
    }
}
