//! # ipds-workloads — the benchmark suite for the IPDS experiments
//!
//! The paper evaluates on ten real server programs with known
//! vulnerabilities (telnetd, wu-ftpd, xinetd, crond, sysklogd, atftpd,
//! httpd, sendmail, sshd, portmap). We cannot ship those C code bases, so
//! this crate provides ten **synthetic MiniC servers** that mirror each
//! program's control structure and, crucially, the idioms the detection
//! mechanism keys on:
//!
//! * authentication/privilege flags tested repeatedly (the Fig. 1 pattern),
//! * mode/configuration variables driving dispatch loops,
//! * loop conditions over memory-resident counters,
//! * helper functions with pointer parameters, and
//! * genuine buffer-overflow surfaces (`read_str`/`strcpy` into fixed
//!   buffers) that normal traffic never triggers.
//!
//! Each [`Workload`] bundles the MiniC source, the vulnerability class the
//! original server had (which selects the attack model in Fig. 7), and a
//! deterministic normal-traffic input generator.
//!
//! [`generator`] additionally produces *random* terminating MiniC programs
//! used by the zero-false-positive property tests.

pub mod generator;
pub mod inputs;
pub mod micro;
pub mod programs;

use ipds_sim::{AttackModel, Input};

/// One benchmark program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name matching the paper's benchmark list.
    pub name: &'static str,
    /// MiniC source text.
    pub source: &'static str,
    /// The vulnerability class of the original server (selects the Fig. 7
    /// attack model).
    pub vuln: AttackModel,
    /// Number of requests/sessions a default input script drives.
    pub default_requests: u32,
}

impl Workload {
    /// Parses the workload's source.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to compile (a bug in this
    /// crate, covered by tests).
    pub fn program(&self) -> ipds_ir::Program {
        ipds_ir::parse(self.source)
            .unwrap_or_else(|e| panic!("workload `{}` failed to parse: {e}", self.name))
    }

    /// Deterministic benign input script.
    pub fn inputs(&self, seed: u64) -> Vec<Input> {
        inputs::normal_inputs(self.name, seed, self.default_requests)
    }
}

/// All ten workloads, in the paper's order.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "telnetd",
            source: programs::TELNETD,
            vuln: AttackModel::BufferOverflow,
            default_requests: 48,
        },
        Workload {
            name: "wuftpd",
            source: programs::WUFTPD,
            vuln: AttackModel::FormatString,
            default_requests: 48,
        },
        Workload {
            name: "xinetd",
            source: programs::XINETD,
            vuln: AttackModel::BufferOverflow,
            default_requests: 48,
        },
        Workload {
            name: "crond",
            source: programs::CROND,
            vuln: AttackModel::BufferOverflow,
            default_requests: 20,
        },
        Workload {
            name: "sysklogd",
            source: programs::SYSKLOGD,
            vuln: AttackModel::FormatString,
            default_requests: 80,
        },
        Workload {
            name: "atftpd",
            source: programs::ATFTPD,
            vuln: AttackModel::BufferOverflow,
            default_requests: 40,
        },
        Workload {
            name: "httpd",
            source: programs::HTTPD,
            vuln: AttackModel::BufferOverflow,
            default_requests: 20,
        },
        Workload {
            name: "sendmail",
            source: programs::SENDMAIL,
            vuln: AttackModel::BufferOverflow,
            default_requests: 40,
        },
        Workload {
            name: "sshd",
            source: programs::SSHD,
            vuln: AttackModel::BufferOverflow,
            default_requests: 40,
        },
        Workload {
            name: "portmap",
            source: programs::PORTMAP,
            vuln: AttackModel::BufferOverflow,
            default_requests: 48,
        },
    ]
}

/// The extended suite: the paper's ten workloads plus the struct-based
/// servers added with MiniC's struct support. Promotion-ablation sweeps run
/// over this list so register-like locals and memory-resident struct fields
/// are both represented.
pub fn extended() -> Vec<Workload> {
    let mut v = all();
    v.push(Workload {
        name: "connpool",
        source: programs::CONNPOOL,
        vuln: AttackModel::BufferOverflow,
        default_requests: 48,
    });
    v.push(Workload {
        name: "statsd",
        source: programs::STATSD,
        vuln: AttackModel::BufferOverflow,
        default_requests: 48,
    });
    v
}

/// Looks a workload up by name (searches the extended suite).
pub fn by_name(name: &str) -> Option<Workload> {
    extended().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipds_sim::{ExecLimits, ExecStatus, Interp, NullObserver};

    #[test]
    fn all_workloads_compile() {
        for w in extended() {
            let p = w.program();
            assert!(p.main().is_some(), "{} needs main", w.name);
            assert!(
                p.branch_count() >= 8,
                "{} too branch-poor: {}",
                w.name,
                p.branch_count()
            );
        }
    }

    #[test]
    fn all_workloads_run_cleanly_on_normal_traffic() {
        for w in extended() {
            let p = w.program();
            for seed in 0..3 {
                let mut interp = Interp::new(&p, w.inputs(seed), ExecLimits::default());
                let status = interp.run(&mut NullObserver);
                assert!(
                    matches!(status, ExecStatus::Exited(_)),
                    "{} seed {seed} ended with {status:?}",
                    w.name
                );
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("httpd").is_some());
        assert!(by_name("connpool").is_some());
        assert!(by_name("nonesuch").is_none());
        assert_eq!(all().len(), 10);
        assert_eq!(extended().len(), 12);
    }

    #[test]
    fn struct_workloads_promote_and_stay_clean() {
        for w in extended() {
            if w.name != "connpool" && w.name != "statsd" {
                continue;
            }
            let mut p = w.program();
            let form = ipds_ir::build_ssa(&mut p, 100);
            ipds_ir::mark_promoted(&mut p, &form);
            ipds_ir::verify_ssa(&p).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(form.promoted > 0, "{} promotes scalars", w.name);
            ipds_ir::deconstruct_ssa(&mut p, &form);
            ipds_ir::verify::verify_program(&p).unwrap();
        }
    }
}
