//! Benign ("normal traffic") input scripts for the workloads.
//!
//! Each generator speaks its server's protocol and keeps every string short
//! enough that no overflow surface triggers — benign runs must be
//! fault-free and alarm-free; only the attack injector perturbs state.

use ipds_sim::rng::StdRng;
use ipds_sim::Input;

fn short_str(rng: &mut StdRng, max_len: usize) -> Input {
    let len = rng.gen_range(1..=max_len.max(1));
    let s: String = (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect();
    Input::Str(s)
}

/// Generates `requests` worth of benign traffic for the named workload.
///
/// # Panics
///
/// Panics on an unknown workload name.
pub fn normal_inputs(name: &str, seed: u64, requests: u32) -> Vec<Input> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let mut v: Vec<Input> = Vec::new();
    match name {
        "telnetd" => {
            // Valid or invalid login, then a command mix.
            if rng.gen_bool(0.7) {
                v.push(Input::Int(1));
                v.push(Input::Int(1234));
            } else {
                v.push(Input::Int(rng.gen_range(1..4)));
                v.push(Input::Int(rng.gen_range(0..100)));
            }
            for _ in 0..requests {
                let cmd = rng.gen_range(1..=4);
                v.push(Input::Int(cmd));
                match cmd {
                    1 => v.push(short_str(&mut rng, 4)),
                    2 => {
                        v.push(Input::Int(rng.gen_range(1..4)));
                        v.push(Input::Int(rng.gen_range(0..120)));
                    }
                    _ => {}
                }
            }
            v.push(Input::Int(0));
        }
        "wuftpd" => {
            let who = rng.gen_range(0..3);
            v.push(Input::Int(who));
            v.push(Input::Int(match who {
                1 => 5150,
                2 => 2001,
                _ => 0,
            }));
            for _ in 0..requests {
                let cmd = rng.gen_range(1..=4);
                v.push(Input::Int(cmd));
                match cmd {
                    1 => v.push(Input::Int(rng.gen_range(0..8))),
                    2 | 3 => v.push(short_str(&mut rng, 5)),
                    _ => {}
                }
            }
            v.push(Input::Int(0));
        }
        "xinetd" => {
            for _ in 0..requests {
                v.push(Input::Int(rng.gen_range(0..8)));
                v.push(short_str(&mut rng, 4));
                v.push(Input::Int(rng.gen_range(0..50)));
            }
            v.push(Input::Int(-1));
        }
        "crond" => {
            let n = rng.gen_range(1..=4);
            v.push(Input::Int(n));
            for _ in 0..n {
                v.push(Input::Int(rng.gen_range(0..30)));
                v.push(Input::Int(rng.gen_range(0..2)));
                v.push(short_str(&mut rng, 5));
            }
            v.push(Input::Int(requests.min(30) as i64));
        }
        "sysklogd" => {
            v.push(Input::Int(if rng.gen_bool(0.5) { 1 } else { 0 })); // console
            for _ in 0..requests {
                v.push(Input::Int(rng.gen_range(0..5)));
                v.push(Input::Int(rng.gen_range(0..9)));
                v.push(short_str(&mut rng, 5));
            }
            v.push(Input::Int(-1));
        }
        "atftpd" => {
            for _ in 0..requests {
                let op = rng.gen_range(1..=2);
                v.push(Input::Int(op));
                v.push(short_str(&mut rng, 5));
                if op == 1 {
                    v.push(Input::Int(rng.gen_range(1..=2))); // mode
                    v.push(Input::Int(rng.gen_range(1..12))); // blocks
                }
                // op 2 is refused while write-protected: no more inputs.
            }
            v.push(Input::Int(0));
        }
        "httpd" => {
            v.push(Input::Int(if rng.gen_bool(0.5) { 4242 } else { 1 }));
            for _ in 0..requests.min(23) {
                v.push(Input::Int(rng.gen_range(1..=2)));
                let class = [b's', b'c', b'a', b'x'][rng.gen_range(0..4usize)];
                let tail: String = (0..rng.gen_range(0..4))
                    .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                    .collect();
                v.push(Input::Str(format!("{}{}", class as char, tail)));
            }
            v.push(Input::Int(0));
        }
        "sendmail" => {
            v.push(Input::Int(1)); // HELO
            v.push(Input::Int(if rng.gen_bool(0.4) { 10 } else { 20 }));
            let msgs = (requests / 5).max(1);
            for _ in 0..msgs {
                v.push(Input::Int(2)); // MAIL
                v.push(short_str(&mut rng, 5));
                let rcpts = rng.gen_range(1..=3);
                for _ in 0..rcpts {
                    v.push(Input::Int(3)); // RCPT
                    v.push(Input::Int(rng.gen_range(9..13)));
                    v.push(short_str(&mut rng, 5));
                }
                v.push(Input::Int(4)); // DATA
            }
            v.push(Input::Int(0));
        }
        "sshd" => {
            v.push(short_str(&mut rng, 5)); // banner
            if rng.gen_bool(0.7) {
                // Successful auth on the first try.
                if rng.gen_bool(0.5) {
                    v.push(Input::Int(7));
                    v.push(Input::Int(1));
                    v.push(Input::Int(2468));
                } else {
                    v.push(Input::Int(9));
                    v.push(Input::Int(2));
                    v.push(Input::Int(8642));
                }
                for _ in 0..requests {
                    v.push(Input::Int(rng.gen_range(1..=2)));
                }
                v.push(Input::Int(0));
            } else {
                // Three failed attempts; the server hangs up.
                for _ in 0..3 {
                    v.push(Input::Int(rng.gen_range(1..5)));
                    v.push(Input::Int(rng.gen_range(1..3)));
                    v.push(Input::Int(rng.gen_range(0..100)));
                }
            }
        }
        "portmap" => {
            v.push(Input::Int(if rng.gen_bool(0.5) { 1 } else { 0 }));
            for _ in 0..requests {
                let cmd = rng.gen_range(1..=4);
                v.push(Input::Int(cmd));
                match cmd {
                    1 => {
                        v.push(Input::Int(rng.gen_range(100..120)));
                        v.push(Input::Int(rng.gen_range(1000..9999)));
                        v.push(short_str(&mut rng, 4));
                    }
                    2 | 3 => v.push(Input::Int(rng.gen_range(100..120))),
                    _ => {}
                }
            }
            v.push(Input::Int(0));
        }
        "connpool" => {
            // Auth handshake, then open/send/name/stat traffic.
            if rng.gen_bool(0.7) {
                v.push(Input::Int(1));
                v.push(Input::Int(4242));
            } else {
                v.push(Input::Int(rng.gen_range(0..3)));
                v.push(Input::Int(rng.gen_range(0..100)));
            }
            for _ in 0..requests {
                let cmd = rng.gen_range(1..=4);
                v.push(Input::Int(cmd));
                match cmd {
                    1 => v.push(Input::Int(rng.gen_range(0..4))),
                    2 => v.push(Input::Int(rng.gen_range(0..8))),
                    3 => v.push(short_str(&mut rng, 4)),
                    _ => {}
                }
            }
            v.push(Input::Int(0));
        }
        "statsd" => {
            // Optional admin token, then sample/tag/flush traffic.
            v.push(Input::Int(if rng.gen_bool(0.3) { 7 } else { 1 }));
            for _ in 0..requests {
                let cmd = rng.gen_range(1..=4);
                v.push(Input::Int(cmd));
                match cmd {
                    1 | 2 => v.push(Input::Int(rng.gen_range(0..90))),
                    3 => v.push(short_str(&mut rng, 4)),
                    _ => {}
                }
            }
            v.push(Input::Int(0));
        }
        other => panic!("unknown workload `{other}`"),
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        for name in [
            "telnetd", "wuftpd", "xinetd", "crond", "sysklogd", "atftpd", "httpd", "sendmail",
            "sshd", "portmap", "connpool", "statsd",
        ] {
            let a = normal_inputs(name, 5, 10);
            let b = normal_inputs(name, 5, 10);
            assert_eq!(a, b, "{name}");
            let c = normal_inputs(name, 6, 10);
            assert_ne!(a, c, "{name} should vary with seed");
        }
    }

    #[test]
    fn strings_stay_short() {
        for name in [
            "telnetd", "wuftpd", "xinetd", "crond", "sysklogd", "atftpd", "httpd", "sendmail",
            "sshd", "portmap", "connpool", "statsd",
        ] {
            for seed in 0..5 {
                for i in normal_inputs(name, seed, 16) {
                    if let Input::Str(s) = i {
                        assert!(s.chars().count() <= 6, "{name}: {s:?}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_name_panics() {
        normal_inputs("nope", 0, 1);
    }
}
