//! # ipds-telemetry — structured events, metrics and phase profiling
//!
//! The IPDS is a *monitoring* device: its value is the telemetry it emits
//! (alarms, check rates, BAT activity, detection statistics, overhead
//! accounting). This crate is the observability substrate every other layer
//! threads that telemetry through:
//!
//! * [`EventSink`] — the structured event interface. The interpreter-side
//!   observers and the campaign engines report per-branch and per-attack
//!   records to a sink shared by reference. Three implementations ship:
//!   [`NullSink`] (the default; every hook is an empty inlined body, so the
//!   instrumented code paths compile down to the uninstrumented ones),
//!   [`CountingSink`] (lock-free atomic counters, shareable across worker
//!   threads), and [`JsonlSink`] (a bounded-buffer JSON-lines writer for
//!   per-event records).
//! * [`MetricsRegistry`] — named monotonic counters and log₂-bucketed
//!   [`Histogram`]s with `snapshot`/[`merge`](MetricsRegistry::merge)
//!   semantics. Campaign worker threads own private registries that fold
//!   deterministically into one result (all merge operations commute).
//! * [`PhaseRecorder`] — wall-clock phase spans (compile → analyze →
//!   golden → campaign) accumulated process-wide via [`phases`] and
//!   serialized by the benchmark drivers.
//!
//! The crate depends only on `std` and sits below every other IPDS crate.
//!
//! ## Determinism
//!
//! Every quantity a sink or registry accumulates is a sum of per-attack
//! (or per-branch) contributions that are themselves deterministic under
//! the seeded protocol. Addition commutes, histogram buckets commute, and
//! min/max commute — so counter snapshots and merged registries are
//! **bit-identical across thread counts and scheduling orders**. Only the
//! *line order* of a [`JsonlSink`] fed by concurrent workers depends on
//! scheduling (each line is self-describing, carrying its attack index).

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Expected direction of a checked branch, as the BSV records it.
///
/// Mirror of the analysis-side `BranchStatus` so this crate stays
/// dependency-free; the observers translate at the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// The BSV expects the branch taken.
    Taken,
    /// The BSV expects the branch not-taken.
    NotTaken,
    /// No expectation is recorded — any direction verifies.
    Unknown,
}

impl fmt::Display for Expectation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Expectation::Taken => "T",
            Expectation::NotTaken => "NT",
            Expectation::Unknown => "?",
        })
    }
}

/// One committed conditional branch as the checker processed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchRecord {
    /// The checker's branch sequence number (1-based commit order).
    pub seq: u64,
    /// PC of the branch.
    pub pc: u64,
    /// Actual committed direction (`true` = taken).
    pub taken: bool,
    /// Expected direction read from the BSV *before* the verify-then-update
    /// step. Populated only when the sink asks for details
    /// ([`EventSink::wants_branch_details`]); the probe costs one extra BSV
    /// read per branch.
    pub expected: Option<Expectation>,
    /// The BCV marked this branch and it was verified against the BSV.
    pub verified: bool,
    /// The verification mismatched — an alarm fired.
    pub alarm: bool,
    /// The expectation the alarm contradicted (present iff `alarm`).
    pub alarm_cause: Option<Expectation>,
    /// BAT entries walked for this (branch, direction).
    pub bat_actions: u32,
    /// BAT actions that changed a BSV slot's value.
    pub bsv_transitions: u32,
    /// Total IPDS table accesses (BCV probe + BSV read + BAT walk).
    pub table_accesses: u32,
}

/// One completed attack of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackRecord {
    /// Attack index within the campaign (seed order).
    pub index: u32,
    /// The attack's derived RNG seed.
    pub seed: u64,
    /// Interpreter step at which the tamper triggered.
    pub trigger_step: u64,
    /// Interpreter steps the attacked run took.
    pub steps: u64,
    /// A live cell existed at the trigger point and was tampered.
    pub tampered: bool,
    /// The branch trace diverged from the golden run.
    pub control_flow_changed: bool,
    /// The IPDS raised at least one alarm.
    pub detected: bool,
}

/// Consumer of the structured event stream.
///
/// Sinks are shared by reference across campaign worker threads, so every
/// hook takes `&self` and implementations use interior mutability (atomics
/// for counters, a mutex for writers). Default bodies ignore everything —
/// [`NullSink`] is exactly the defaults, and monomorphization inlines the
/// empty bodies away, keeping the disabled path zero-cost.
pub trait EventSink: Sync {
    /// True if [`BranchRecord::expected`] should be populated. Defaults to
    /// `false`; only detail sinks (JSONL) pay the extra pre-verify probe.
    #[inline]
    fn wants_branch_details(&self) -> bool {
        false
    }

    /// True if this sink consumes the raw per-branch record stream
    /// ([`EventSink::on_branch`]). Defaults to `true` — the safe answer for
    /// any counting or logging sink. Engines keep full-fidelity execution
    /// for such sinks; when `false` (the [`NullSink`] case) an engine may
    /// elide re-executing deterministic work whose branch records would be
    /// discarded anyway, e.g. warm-starting attacks from golden-run
    /// snapshots.
    #[inline]
    fn wants_branch_stream(&self) -> bool {
        true
    }

    /// A committed conditional branch was checked.
    #[inline]
    fn on_branch(&self, record: &BranchRecord) {
        let _ = record;
    }

    /// A campaign attack completed.
    #[inline]
    fn on_attack(&self, record: &AttackRecord) {
        let _ = record;
    }
}

/// The default sink: ignores every event at zero cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    /// The null sink discards branch records, so engines are free to elide
    /// the executions that would produce them.
    #[inline]
    fn wants_branch_stream(&self) -> bool {
        false
    }
}

/// Shared reference to the canonical [`NullSink`] instance.
pub static NULL_SINK: NullSink = NullSink;

/// Lock-free counting sink: atomic per-event counters, shareable by every
/// worker thread of a campaign.
///
/// All counters are sums of deterministic per-event contributions, and
/// atomic addition commutes, so [`CountingSink::snapshot`] is bit-identical
/// for any thread count running the same seeded protocol.
#[derive(Debug, Default)]
pub struct CountingSink {
    branches: AtomicU64,
    checked: AtomicU64,
    bsv_transitions: AtomicU64,
    bat_actions: AtomicU64,
    hash_probes: AtomicU64,
    alarms_expected_taken: AtomicU64,
    alarms_expected_not_taken: AtomicU64,
    attacks: AtomicU64,
    tampers: AtomicU64,
    cf_changes: AtomicU64,
    detections: AtomicU64,
}

/// A point-in-time copy of a [`CountingSink`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Committed conditional branches observed.
    pub branches: u64,
    /// Branches verified against the BSV (BCV hits).
    pub checked: u64,
    /// BAT actions that changed a BSV slot.
    pub bsv_transitions: u64,
    /// BAT entries walked.
    pub bat_actions: u64,
    /// IPDS table accesses (every probe goes through the hashed slot space).
    pub hash_probes: u64,
    /// Alarms whose contradicted expectation was taken.
    pub alarms_expected_taken: u64,
    /// Alarms whose contradicted expectation was not-taken.
    pub alarms_expected_not_taken: u64,
    /// Campaign attacks completed.
    pub attacks: u64,
    /// Attacks that tampered a live cell.
    pub tampers: u64,
    /// Attacks whose tampering changed control flow.
    pub cf_changes: u64,
    /// Attacks the IPDS detected.
    pub detections: u64,
}

impl CounterSnapshot {
    /// Total alarms across causes.
    pub fn alarms(&self) -> u64 {
        self.alarms_expected_taken + self.alarms_expected_not_taken
    }
}

impl CountingSink {
    /// Creates a sink with all counters at zero.
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// Reads every counter.
    pub fn snapshot(&self) -> CounterSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        CounterSnapshot {
            branches: get(&self.branches),
            checked: get(&self.checked),
            bsv_transitions: get(&self.bsv_transitions),
            bat_actions: get(&self.bat_actions),
            hash_probes: get(&self.hash_probes),
            alarms_expected_taken: get(&self.alarms_expected_taken),
            alarms_expected_not_taken: get(&self.alarms_expected_not_taken),
            attacks: get(&self.attacks),
            tampers: get(&self.tampers),
            cf_changes: get(&self.cf_changes),
            detections: get(&self.detections),
        }
    }
}

impl EventSink for CountingSink {
    #[inline]
    fn on_branch(&self, r: &BranchRecord) {
        self.branches.fetch_add(1, Ordering::Relaxed);
        if r.verified {
            self.checked.fetch_add(1, Ordering::Relaxed);
        }
        self.bsv_transitions
            .fetch_add(r.bsv_transitions as u64, Ordering::Relaxed);
        self.bat_actions
            .fetch_add(r.bat_actions as u64, Ordering::Relaxed);
        self.hash_probes
            .fetch_add(r.table_accesses as u64, Ordering::Relaxed);
        if r.alarm {
            match r.alarm_cause {
                Some(Expectation::NotTaken) => &self.alarms_expected_not_taken,
                _ => &self.alarms_expected_taken,
            }
            .fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    fn on_attack(&self, r: &AttackRecord) {
        self.attacks.fetch_add(1, Ordering::Relaxed);
        if r.tampered {
            self.tampers.fetch_add(1, Ordering::Relaxed);
        }
        if r.control_flow_changed {
            self.cf_changes.fetch_add(1, Ordering::Relaxed);
        }
        if r.detected {
            self.detections.fetch_add(1, Ordering::Relaxed);
        }
    }
}

struct JsonlInner<W: Write> {
    writer: W,
    written: u64,
    dropped: u64,
}

/// Bounded JSON-lines event writer.
///
/// Each event becomes one self-describing JSON object per line (schema in
/// `docs/OBSERVABILITY.md`). At most `cap` event lines are written
/// (0 = unlimited); further events are counted as dropped and reported by
/// the trailing `summary` line that [`JsonlSink::finish`] appends. Writes
/// go through a mutex — this is the *detail* sink, not the hot-path one.
pub struct JsonlSink<W: Write + Send> {
    inner: Mutex<JsonlInner<W>>,
    cap: u64,
}

impl<W: Write + Send> fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("JsonlSink")
            .field("cap", &self.cap)
            .field("written", &inner.written)
            .field("dropped", &inner.dropped)
            .finish()
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Creates a sink writing at most `cap` event lines (0 = unlimited).
    pub fn new(writer: W, cap: u64) -> JsonlSink<W> {
        JsonlSink {
            inner: Mutex::new(JsonlInner {
                writer,
                written: 0,
                dropped: 0,
            }),
            cap,
        }
    }

    fn emit(&self, line: fmt::Arguments<'_>) {
        let mut inner = self.inner.lock().unwrap();
        if self.cap != 0 && inner.written >= self.cap {
            inner.dropped += 1;
            return;
        }
        // I/O errors surface on finish(); events are best-effort.
        if inner.writer.write_fmt(line).is_ok() {
            inner.written += 1;
        } else {
            inner.dropped += 1;
        }
    }

    /// Writes the trailing summary line, flushes, and returns the writer.
    pub fn finish(self) -> io::Result<W> {
        let inner = self.inner.into_inner().unwrap();
        let mut writer = inner.writer;
        writeln!(
            writer,
            "{{\"type\":\"summary\",\"events\":{},\"dropped\":{}}}",
            inner.written, inner.dropped
        )?;
        writer.flush()?;
        Ok(writer)
    }
}

impl JsonlSink<Vec<u8>> {
    /// In-memory sink (tests, small traces).
    pub fn buffered(cap: u64) -> JsonlSink<Vec<u8>> {
        JsonlSink::new(Vec::new(), cap)
    }
}

fn opt_expectation(e: Option<Expectation>) -> &'static str {
    match e {
        Some(Expectation::Taken) => "\"T\"",
        Some(Expectation::NotTaken) => "\"NT\"",
        Some(Expectation::Unknown) => "\"?\"",
        None => "null",
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn wants_branch_details(&self) -> bool {
        true
    }

    fn on_branch(&self, r: &BranchRecord) {
        self.emit(format_args!(
            "{{\"type\":\"branch\",\"seq\":{},\"pc\":{},\"taken\":{},\"expected\":{},\
             \"verified\":{},\"alarm\":{},\"bat_actions\":{},\"bsv_transitions\":{},\
             \"table_accesses\":{}}}\n",
            r.seq,
            r.pc,
            r.taken,
            opt_expectation(r.expected),
            r.verified,
            r.alarm,
            r.bat_actions,
            r.bsv_transitions,
            r.table_accesses,
        ));
    }

    fn on_attack(&self, r: &AttackRecord) {
        self.emit(format_args!(
            "{{\"type\":\"attack\",\"index\":{},\"seed\":{},\"trigger_step\":{},\"steps\":{},\
             \"tampered\":{},\"cf_changed\":{},\"detected\":{}}}\n",
            r.index,
            r.seed,
            r.trigger_step,
            r.steps,
            r.tampered,
            r.control_flow_changed,
            r.detected,
        ));
    }
}

/// Number of log₂ buckets a [`Histogram`] keeps: bucket `i` counts values
/// whose bit length is `i` (bucket 0 counts zeros).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations.
///
/// Bucketing by bit length keeps merge exact and order-independent: two
/// histograms merge by bucket-wise addition, and `min`/`max`/`sum`/`count`
/// all commute, so merged results are independent of worker scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values (wrapping on overflow).
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Bucket `i` counts values with bit length `i`.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[(u64::BITS - value.leading_zeros()) as usize] += 1;
    }

    /// Folds another histogram in (bucket-wise; commutative).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Named monotonic counters and histograms with deterministic merge.
///
/// Worker threads of a campaign each own a private registry; the engine
/// merges them after the join. Every merge operation commutes, so the
/// folded registry is bit-identical for any thread count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Reads a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds `other` into `self` (commutative and associative).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&n, &v)| (n, v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&n, h)| (n, h))
    }
}

/// Accumulating wall-clock spans per named phase.
///
/// Spans with the same name accumulate; snapshot order is first-recorded
/// order, so a driver that always enters phases in pipeline order
/// (compile → analyze → golden → campaign) serializes them that way.
#[derive(Debug, Default)]
pub struct PhaseRecorder {
    inner: Mutex<Vec<(String, f64)>>,
}

impl PhaseRecorder {
    /// Creates an empty recorder.
    pub fn new() -> PhaseRecorder {
        PhaseRecorder::default()
    }

    /// Runs `f`, accumulating its wall-clock under `name`.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(name, start.elapsed().as_secs_f64());
        out
    }

    /// Adds `seconds` to the named phase.
    pub fn add(&self, name: &str, seconds: f64) {
        let mut inner = self.inner.lock().unwrap();
        match inner.iter_mut().find(|(n, _)| n == name) {
            Some((_, total)) => *total += seconds,
            None => inner.push((name.to_string(), seconds)),
        }
    }

    /// All phases in first-recorded order with accumulated seconds.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        self.inner.lock().unwrap().clone()
    }

    /// Clears all recorded spans.
    pub fn reset(&self) {
        self.inner.lock().unwrap().clear();
    }
}

/// The process-wide phase recorder the benchmark drivers accumulate into.
pub fn phases() -> &'static PhaseRecorder {
    static PHASES: OnceLock<PhaseRecorder> = OnceLock::new();
    PHASES.get_or_init(PhaseRecorder::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn branch(seq: u64, alarm: bool) -> BranchRecord {
        BranchRecord {
            seq,
            pc: 0x40,
            taken: true,
            expected: None,
            verified: true,
            alarm,
            alarm_cause: alarm.then_some(Expectation::NotTaken),
            bat_actions: 2,
            bsv_transitions: 1,
            table_accesses: 4,
        }
    }

    #[test]
    fn counting_sink_accumulates() {
        let sink = CountingSink::new();
        sink.on_branch(&branch(1, false));
        sink.on_branch(&branch(2, true));
        sink.on_attack(&AttackRecord {
            index: 0,
            seed: 9,
            trigger_step: 5,
            steps: 100,
            tampered: true,
            control_flow_changed: true,
            detected: true,
        });
        let s = sink.snapshot();
        assert_eq!(s.branches, 2);
        assert_eq!(s.checked, 2);
        assert_eq!(s.bat_actions, 4);
        assert_eq!(s.bsv_transitions, 2);
        assert_eq!(s.hash_probes, 8);
        assert_eq!(s.alarms(), 1);
        assert_eq!(s.alarms_expected_not_taken, 1);
        assert_eq!(s.attacks, 1);
        assert_eq!(s.detections, 1);
    }

    #[test]
    fn counting_is_commutative_across_threads() {
        let sink = CountingSink::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..100 {
                        sink.on_branch(&branch(i, i % 10 == 0));
                    }
                });
            }
        });
        let s = sink.snapshot();
        assert_eq!(s.branches, 400);
        assert_eq!(s.alarms(), 40);
    }

    #[test]
    fn jsonl_sink_bounds_and_summarizes() {
        let sink = JsonlSink::buffered(2);
        for i in 0..5 {
            sink.on_branch(&branch(i, false));
        }
        let out = String::from_utf8(sink.finish().unwrap()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "2 events + summary: {out}");
        assert!(lines[0].contains("\"type\":\"branch\""));
        assert!(lines[0].contains("\"seq\":0"));
        assert!(lines[2].contains("\"events\":2"));
        assert!(lines[2].contains("\"dropped\":3"));
    }

    #[test]
    fn histogram_merge_is_order_independent() {
        let mut all = Histogram::default();
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [0u64, 1, 2, 3, 100, 5000, u64::MAX] {
            all.observe(v);
        }
        for v in [0u64, 2, 5000] {
            a.observe(v);
        }
        for v in [1u64, 3, 100, u64::MAX] {
            b.observe(v);
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, all);
        assert_eq!(ab.count, 7);
        assert_eq!(ab.min, 0);
        assert_eq!(ab.max, u64::MAX);
    }

    #[test]
    fn registry_merge_commutes() {
        let mut a = MetricsRegistry::new();
        a.add("attacks", 3);
        a.observe("steps", 10);
        let mut b = MetricsRegistry::new();
        b.add("attacks", 4);
        b.add("alarms", 1);
        b.observe("steps", 900);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("attacks"), 7);
        assert_eq!(ab.counter("alarms"), 1);
        assert_eq!(ab.counter("missing"), 0);
        assert_eq!(ab.histogram("steps").unwrap().count, 2);
    }

    #[test]
    fn phase_recorder_accumulates_in_order() {
        let rec = PhaseRecorder::new();
        rec.time("compile", || {});
        rec.add("golden", 0.25);
        rec.add("compile", 1.0);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "compile");
        assert!(snap[0].1 >= 1.0);
        assert_eq!(snap[1], ("golden".to_string(), 0.25));
        rec.reset();
        assert!(rec.snapshot().is_empty());
    }

    #[test]
    fn null_sink_ignores_everything() {
        NULL_SINK.on_branch(&branch(1, true));
        NULL_SINK.on_attack(&AttackRecord {
            index: 0,
            seed: 0,
            trigger_step: 0,
            steps: 0,
            tampered: false,
            control_flow_changed: false,
            detected: false,
        });
        assert!(!NULL_SINK.wants_branch_details());
    }
}
