#!/usr/bin/env bash
# Offline CI for the IPDS reproduction: everything here runs with no
# network access (external dev-harnesses are vendored in `vendor/`).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> rustfmt"
cargo fmt --all -- --check

echo "==> clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> clippy (analysis-side crates, explicit)"
for crate in ipds-analysis ipds-dataflow ipds-absint; do
    cargo clippy -p "$crate" --all-targets -- -D warnings
done

echo "==> deprecation gate (in-tree code must use the builder APIs)"
cargo clippy --workspace --all-targets -- -D deprecated

echo "==> tier-1 build + tests"
cargo build --release --workspace
cargo test -q --release --workspace

echo "==> pipeline gate (verify tables + serial/threaded determinism, all workloads)"
cargo run -q --release -p ipds --bin ipdsc -- \
    build --workloads --verify-tables --determinism --threads 4

echo "==> lint gate (table soundness audit, all workloads; fails on any LintError)"
cargo run -q --release -p ipds --bin ipdsc -- \
    lint --workloads --threads 4

echo "==> property suites (vendored mini-proptest)"
export PROPTEST_CASES="${PROPTEST_CASES:-64}"
cargo test -q --release --features props
for crate in ipds-ir ipds-dataflow ipds-analysis ipds-absint; do
    cargo test -q --release -p "$crate" --features props
done

echo "==> bench harness compiles (vendored mini-criterion)"
cargo build --release -p ipds-bench --benches --features bench-harness

echo "==> campaign smoke (parallel engine, 10 attacks/workload)"
cargo run -q --release -p ipds-bench --bin exp_fig7 -- --attacks 10

echo "==> fault-injection gate (every checksummed image flip must be rejected)"
cargo run -q --release -p ipds --bin ipdsc -- \
    faults --workloads --flips 24 --seed 2006 --threads 4

echo "==> telemetry smoke (exp_all --quick must emit phase spans)"
cargo run -q --release -p ipds-bench --bin exp_all -- --quick
for key in '"telemetry"' '"spans"' '"compile"' '"analyze"' '"golden"' \
           '"campaign"' '"null_sink"' '"campaign_counters"' \
           '"compile.analyze-functions"' '"hash_retries"' '"bat_bytes"' \
           '"passes"' '"lint_errors"' '"lint_warnings"' '"refine_proved"' \
           '"refine_demoted"' '"faults_detected"' '"faults_masked"' \
           '"detect_latency_p50"' '"detect_latency_histogram"'; do
    grep -q "$key" results/bench_campaign.json \
        || { echo "missing $key in results/bench_campaign.json"; exit 1; }
done

echo "CI OK"
