#!/usr/bin/env bash
# Offline CI for the IPDS reproduction: everything here runs with no
# network access (external dev-harnesses are vendored in `vendor/`).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> rustfmt"
cargo fmt --all -- --check

echo "==> clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> clippy (analysis-side crates, explicit)"
for crate in ipds-ir ipds-analysis ipds-dataflow ipds-absint; do
    cargo clippy -p "$crate" --all-targets -- -D warnings
done

echo "==> deprecation gate (in-tree code must use the builder APIs)"
cargo clippy --workspace --all-targets -- -D deprecated

echo "==> tier-1 build + tests"
cargo build --release --workspace
cargo test -q --release --workspace

echo "==> pipeline gate (verify tables + serial/threaded determinism, all workloads)"
cargo run -q --release -p ipds --bin ipdsc -- \
    build --workloads --verify-tables --determinism --threads 4

echo "==> SSA determinism gate (promotion window on: bit-identical at 1/2/4/8 threads)"
# --determinism rebuilds serially and wide and compares images byte-for-byte;
# loop the explicit thread counts so every pool width goes through the window.
for t in 2 4 8; do
    cargo run -q --release -p ipds --bin ipdsc -- \
        build --workloads --promote 50 --determinism --threads "$t" > /dev/null
done
cargo run -q --release -p ipds --bin ipdsc -- \
    build --workloads --promote 100 --determinism --threads 4 > /dev/null
echo "promotion window byte-identical across thread counts"

echo "==> prune gate (feasibility pruning: bit-identical at 2/4/8 threads, lint-clean)"
# prune-cfg re-runs discovery over the pruned view; the image must stay
# deterministic at every pool width and the pruned tables must audit clean.
for t in 2 4 8; do
    cargo run -q --release -p ipds --bin ipdsc -- \
        build --workloads --prune --determinism --threads "$t" > /dev/null
done
cargo run -q --release -p ipds --bin ipdsc -- \
    build --workloads --prune --promote 50 --determinism --threads 4 > /dev/null
echo "pruned builds byte-identical across thread counts"
cargo run -q --release -p ipds --bin ipdsc -- \
    lint --workloads --prune --threads 4

echo "==> lint gate (table soundness audit, all workloads; fails on any LintError)"
cargo run -q --release -p ipds --bin ipdsc -- \
    lint --workloads --threads 4

echo "==> lint gate at full register promotion (erosion must stay sound)"
cargo run -q --release -p ipds --bin ipdsc -- \
    lint --workloads --promote 100 --threads 4

echo "==> property suites (vendored mini-proptest)"
export PROPTEST_CASES="${PROPTEST_CASES:-64}"
cargo test -q --release --features props
for crate in ipds-ir ipds-dataflow ipds-analysis ipds-absint ipds-parallel; do
    cargo test -q --release -p "$crate" --features props
done

echo "==> bench harness compiles (vendored mini-criterion)"
cargo build --release -p ipds-bench --benches --features bench-harness
cargo build --release -p ipds-runtime --benches --features bench-harness

echo "==> campaign smoke (parallel engine, 10 attacks/workload)"
cargo run -q --release -p ipds-bench --bin exp_fig7 -- --attacks 10

echo "==> fault-injection gate (every checksummed image flip must be rejected)"
cargo run -q --release -p ipds --bin ipdsc -- \
    faults --workloads --flips 24 --seed 2006 --threads 4

echo "==> serve smoke (fleet monitor must surface every injected tamper)"
# `ipdsc serve` exits nonzero if any shadow-validated injected tamper is
# missed or any root cause comes out wrong, at both 1 worker and many.
cargo run -q --release -p ipds --bin ipdsc -- \
    serve --workloads all --sessions 32 --threads 1
cargo run -q --release -p ipds --bin ipdsc -- \
    serve --workloads all --sessions 32 --threads 4

echo "==> telemetry smoke (exp_all --quick must emit phase spans)"
cargo run -q --release -p ipds-bench --bin exp_all -- --quick
for key in '"telemetry"' '"spans"' '"compile"' '"analyze"' '"golden"' \
           '"campaign"' '"null_sink"' '"campaign_counters"' \
           '"compile.analyze-functions"' '"hash_retries"' '"bat_bytes"' \
           '"passes"' '"lint_errors"' '"lint_warnings"' '"refine_proved"' \
           '"refine_demoted"' '"faults_detected"' '"faults_masked"' \
           '"detect_latency_p50"' '"detect_latency_histogram"' \
           '"fleet"' '"sessions_per_sec"' '"events_per_sec"' \
           '"tampered_images"' '"hot_regions"' '"isolated_noise"' \
           '"all_tampers_surfaced": true' \
           '"promotion"' '"promote"' '"promoted_vars"' '"coverage"' \
           '"avg_bsv_bits"' \
           '"feasibility"' '"prune"' '"pruned_edges"' '"pruned_blocks"' \
           '"prune_rounds"' '"coverage_lift"'; do
    grep -q "$key" results/bench_campaign.json \
        || { echo "missing $key in results/bench_campaign.json"; exit 1; }
done

echo "==> pool-reuse gate (persistent pool: repeated use stays bit-identical)"
# The persistent pool must serve back-to-back batches and whole campaigns
# through the *same* worker threads without drifting: 100 consecutive
# calls on one pool vs. fresh-pool vs. serial, the global pool must not
# respawn threads between calls, repeated warm-started campaigns must
# match serial at every thread count, and bounded-channel back-pressure
# in the service must be invisible in results.
cargo test -q --release -p ipds-parallel \
    a_dedicated_pool_serves_repeated_calls_deterministically
cargo test -q --release -p ipds-parallel the_global_pool_reuses_its_threads
cargo test -q --release --test parallel_campaigns \
    repeated_campaigns_reuse_the_persistent_pool
cargo test -q --release --test service_fleet bounded_ingestion_backpressure

echo "==> scaling gate (every thread count must pull its weight; see docs/PERF.md)"
# The sweep self-calibrates each point to >=250 ms of measured work, so
# the numbers are out of thread-spawn-noise territory, and every row
# records the workload it timed ("attacks") and its wall time ("seconds").
# EVERY multi-thread point is gated against the 1-thread baseline — not
# just the last row. On a real multicore box any speedup below 1.0 is a
# regression: with a persistent pool and >=250 ms of work per point,
# parallelism is at worst free. A single-hardware-thread box can at best
# tie, so the floor there only catches a pool collapse (a serialization
# bug reads ~0.1x; honest time-slicing reads ~0.9-1.0x).
cores=$(nproc 2>/dev/null || echo 1)
floor=1.00
[ "$cores" -le 1 ] && floor=0.70
scaling_block=$(sed -n '/"scaling": \[/,/\]/p' results/bench_campaign.json)
for key in '"attacks":' '"seconds":' '"speedup":'; do
    grep -q "$key" <<<"$scaling_block" \
        || { echo "scaling rows missing $key in results/bench_campaign.json"; exit 1; }
done
mapfile -t rows < <(grep -o '"threads": [0-9]*.*"speedup": [0-9.]*' <<<"$scaling_block" \
    | sed 's/"threads": \([0-9]*\).*"speedup": \([0-9.]*\)/\1 \2/')
[ "${#rows[@]}" -ge 2 ] || { echo "scaling sweep missing from results/bench_campaign.json"; exit 1; }
fail=0
for row in "${rows[@]:1}"; do
    t=${row%% *}
    sp=${row##* }
    awk -v t="$t" -v sp="$sp" -v floor="$floor" 'BEGIN {
        if (sp < floor) {
            printf "scaling regression: %sT speedup %.2fx < floor %.2fx\n", t, sp, floor
            exit 1
        }
        printf "scaling ok: %sT speedup %.2fx (floor %.2fx)\n", t, sp, floor
    }' || fail=1
done
[ "$fail" -eq 0 ] || { echo "scaling gate failed"; exit 1; }

echo "CI OK"
