#!/usr/bin/env bash
# Offline CI for the IPDS reproduction: everything here runs with no
# network access (external dev-harnesses are vendored in `vendor/`).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> rustfmt"
cargo fmt --all -- --check

echo "==> clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1 build + tests"
cargo build --release --workspace
cargo test -q --release --workspace

echo "==> property suites (vendored mini-proptest)"
export PROPTEST_CASES="${PROPTEST_CASES:-64}"
cargo test -q --release --features props
for crate in ipds-ir ipds-dataflow ipds-analysis; do
    cargo test -q --release -p "$crate" --features props
done

echo "==> bench harness compiles (vendored mini-criterion)"
cargo build --release -p ipds-bench --benches --features bench-harness

echo "==> campaign smoke (parallel engine, 10 attacks/workload)"
cargo run -q --release -p ipds-bench --bin exp_fig7 -- --attacks 10

echo "CI OK"
