//! Session-layer tests for the `ipdsd` fleet service (`crates/service`,
//! re-exported from the `ipds::` root): image-cache sharing, session-pool
//! recycling, worker-count bit-identity and the incident-correlation
//! rules.

use std::sync::Arc;

use ipds::analysis::TableImage;
use ipds::{
    correlate, BranchStatus, GuestEvent, ImageCache, Incident, IncidentKind, Protected, RootCause,
    Service, ServiceError, ServiceSpec,
};

fn cached_artifact(
    w: &ipds::workloads::Workload,
) -> (ImageCache, Arc<ipds::WorkloadArtifact>, TableImage) {
    let p = Protected::compile(w).unwrap();
    let image = TableImage::build(&p.analysis);
    let mut cache = ImageCache::new();
    let artifact = cache.load(w.name, &image).unwrap();
    (cache, artifact, image)
}

#[test]
fn image_cache_shares_verified_artifacts() {
    let w = &ipds::workloads::all()[0];
    let (mut cache, first, image) = cached_artifact(w);
    // Registering identical bytes again is a cache hit on the *same*
    // artifact — verified once, shared everywhere.
    let second = cache.load(w.name, &image).unwrap();
    assert!(Arc::ptr_eq(&first, &second));
    assert_eq!(cache.stats().verified, 1);
    assert_eq!(cache.stats().hits, 1);
    assert_eq!(cache.len(), 1);
}

#[test]
fn image_cache_rejects_tampered_bytes_without_poisoning() {
    let w = &ipds::workloads::all()[0];
    let (mut cache, _first, image) = cached_artifact(w);
    let mut bytes = image.as_bytes().to_vec();
    let payload = image.payload_offset().unwrap();
    bytes[payload] ^= 1;
    let bad = TableImage::from_bytes(bytes);
    let err = cache.load(w.name, &bad).unwrap_err();
    assert!(matches!(err, ServiceError::Image { .. }));
    // Unified error classification reaches the service layer too.
    assert_eq!(ipds::Error::from(err).kind(), ipds::ErrorKind::Service);
    // The reject never entered the cache: the verified entry is intact
    // and identical genuine bytes still hit it.
    assert_eq!(cache.stats().rejects, 1);
    assert_eq!(cache.len(), 1);
    let again = cache.load(w.name, &image).unwrap();
    assert_eq!(again.checksum, _first.checksum);
    assert_eq!(cache.stats().hits, 1);
}

#[test]
fn session_pool_recycles_and_reports_high_water() {
    let w = &ipds::workloads::all()[0];
    let (_cache, artifact, _image) = cached_artifact(w);
    let mut service = Service::start(vec![artifact], 1);
    // Three windows of four concurrent sessions on one worker: 12
    // checkouts, the first window's 4 are fresh, the remaining 8 recycle.
    let mut next = 0u64;
    for _window in 0..3 {
        let ids: Vec<u64> = (0..4)
            .map(|_| {
                let id = next;
                next += 1;
                id
            })
            .collect();
        for &id in &ids {
            service.open(id, w.name).unwrap();
        }
        for &id in &ids {
            service.close(id).unwrap();
        }
    }
    let report = service.finish();
    assert_eq!(report.pool.checkouts, 12);
    assert_eq!(report.pool.reuses, 8);
    assert_eq!(report.pool.recycled, 12);
    assert_eq!(report.pool.high_water, 4);
    assert_eq!(report.metrics.counter("service.pool_checkouts"), 12);
    assert_eq!(report.metrics.counter("service.pool_reuses"), 8);
    assert_eq!(report.metrics.counter("service.peak_sessions"), 4);
    assert_eq!(report.metrics.counter("service.sessions_opened"), 12);
    assert_eq!(report.metrics.counter("service.sessions_closed"), 12);
    assert!(report.incidents.is_empty());
}

#[test]
fn unknown_workload_is_refused_and_recorded_as_image_tamper() {
    let w = &ipds::workloads::all()[0];
    let (_cache, artifact, _image) = cached_artifact(w);
    let mut service = Service::start(vec![artifact], 2);
    let err = service.open(7, "no-such-workload").unwrap_err();
    assert!(matches!(err, ServiceError::UnknownWorkload { .. }));
    assert!(!service.is_open(7));
    // Submitting against the refused session fails too.
    let err = service.submit(7, vec![GuestEvent::Return]).unwrap_err();
    assert!(matches!(err, ServiceError::UnknownSession { session: 7 }));
    let report = service.finish();
    assert_eq!(report.sessions.len(), 1);
    assert!(report.sessions[0].rejected);
    assert_eq!(report.incidents.len(), 1);
    assert_eq!(report.incidents[0].kind, IncidentKind::ImageTamper);
    assert_eq!(
        report.root_causes,
        vec![RootCause::TamperedImage {
            workload: "no-such-workload".into(),
            sessions: 1,
        }]
    );
}

#[test]
fn malformed_stream_opens_protocol_violation() {
    let w = &ipds::workloads::all()[0];
    let (_cache, artifact, _image) = cached_artifact(w);
    let mut service = Service::start(vec![artifact], 1);
    service.open(0, w.name).unwrap();
    // A bare Return with no frame underflows the checker's frame stack.
    service.submit(0, vec![GuestEvent::Return]).unwrap();
    service.close(0).unwrap();
    let report = service.finish();
    assert_eq!(report.sessions[0].stats.underflows, 1);
    assert_eq!(report.incidents.len(), 1);
    assert!(matches!(
        report.incidents[0].kind,
        IncidentKind::ProtocolViolation
    ));
    // A lone malformed stream convicts its own session only.
    assert_eq!(
        report.root_causes,
        vec![RootCause::IsolatedNoise {
            workload: w.name.to_string(),
            session: 0,
        }]
    );
}

#[test]
fn correlation_rules_are_deterministic() {
    let inc = |session: u64, workload: &str, kind| Incident {
        session,
        workload: workload.into(),
        kind,
        seq: 0,
        alarm_count: 1,
    };
    let path = |pc| IncidentKind::InfeasiblePath {
        pc,
        expected: BranchStatus::Taken,
        actual: false,
    };
    let incidents = vec![
        inc(5, "b", path(10)),
        inc(1, "b", path(10)),
        inc(3, "b", path(10)),
        inc(7, "c", path(20)),
        inc(2, "a", IncidentKind::ImageTamper),
        inc(9, "d", IncidentKind::ProtocolViolation),
    ];
    let causes = correlate(&incidents, 3);
    assert_eq!(
        causes,
        vec![
            // Image tampers convict the image, regardless of cluster size.
            RootCause::TamperedImage {
                workload: "a".into(),
                sessions: 1,
            },
            // Three sessions at one PC cluster into a hot region...
            RootCause::HotMemoryRegion {
                workload: "b".into(),
                pc: 10,
                sessions: 3,
            },
            // ...a lone same-kind incident at another PC does not.
            RootCause::IsolatedNoise {
                workload: "c".into(),
                session: 7,
            },
            RootCause::IsolatedNoise {
                workload: "d".into(),
                session: 9,
            },
        ]
    );
}

#[test]
fn bounded_ingestion_backpressure_never_changes_results() {
    let w = &ipds::workloads::all()[0];
    let (_cache, artifact, _image) = cached_artifact(w);
    let main = Protected::compile(w).unwrap().program.main().unwrap().id;
    let batch = || vec![GuestEvent::Call(main), GuestEvent::Return];
    // Depth-1 channels: a burst of submits outruns the worker, so the
    // control plane blocks on the full channel (counted as stalls)
    // instead of queueing without bound. Same stream through the default
    // capacity for comparison.
    let mut tight = Service::start_bounded(vec![artifact.clone()], 1, 1);
    let mut roomy = Service::start(vec![artifact], 1);
    for service in [&mut tight, &mut roomy] {
        service.open(0, w.name).unwrap();
        for _ in 0..256 {
            service.submit(0, batch()).unwrap();
        }
        service.close(0).unwrap();
    }
    let tight = tight.finish();
    let roomy = roomy.finish();
    // Back-pressure is pure flow control: every observable result is
    // identical to the unconstrained run.
    assert_eq!(tight.sessions, roomy.sessions);
    assert_eq!(tight.incidents, roomy.incidents);
    assert_eq!(tight.sessions[0].batches, 256);
    assert_eq!(tight.metrics.counter("service.events_ingested"), 512);
    // Stall *counts* are timing-shaped, but the counter is always emitted.
    for report in [&tight, &roomy] {
        assert!(report
            .metrics
            .counters()
            .any(|(k, _)| k == "service.backpressure_stalls"));
    }
}

#[test]
fn fleet_is_bit_identical_across_worker_counts() {
    // One plan (shadow-validated injections included), executed at four
    // worker counts: the outcome — sessions, incidents, causes and every
    // non-scheduler counter — must be byte-for-byte identical, and every
    // injected tamper class must have surfaced with its fleet-level cause.
    let wl: Vec<_> = ipds::workloads::all().into_iter().take(4).collect();
    let plan = ServiceSpec::new()
        .workloads(wl)
        .sessions(64)
        .batch(128)
        .window(16)
        .seed(11)
        .plan();
    assert_eq!(plan.sessions(), 64);
    let base = plan.execute(1);
    assert!(base.ok(), "{:?}", base.missed);
    let causes = &base.outcome.root_causes;
    assert!(causes
        .iter()
        .any(|c| matches!(c, RootCause::TamperedImage { .. })));
    assert!(causes
        .iter()
        .any(|c| matches!(c, RootCause::HotMemoryRegion { .. })));
    assert!(causes
        .iter()
        .any(|c| matches!(c, RootCause::IsolatedNoise { .. })));
    for workers in [2, 4, 8] {
        let run = plan.execute(workers);
        assert!(run.ok(), "{workers} workers: {:?}", run.missed);
        assert_eq!(base.outcome, run.outcome, "{workers} workers");
    }
}
