//! Acceptance tests for the compiler pass pipeline: the threaded
//! per-function analysis must be **bit-identical** to serial on every
//! workload under every optimizer setting, and the `verify-tables` pass must
//! hold on all of them — and catch corruption with typed errors.

use ipds::analysis::pipeline::{build_program, BuildOptions};
use ipds::analysis::{verify_tables, AnalysisConfig, TableVerifyError};
use ipds::workloads;

fn options(optimized: bool, threads: usize, verify: bool) -> BuildOptions {
    BuildOptions {
        config: AnalysisConfig::default(),
        optimize: optimized,
        threads,
        verify,
        ..BuildOptions::default()
    }
}

#[test]
fn images_are_bit_identical_across_thread_counts() {
    for w in workloads::all() {
        for optimized in [false, true] {
            let serial = build_program(w.program(), options(optimized, 1, false))
                .unwrap_or_else(|e| panic!("{} serial: {e}", w.name));
            for threads in [2usize, 4, 8] {
                let par = build_program(w.program(), options(optimized, threads, false))
                    .unwrap_or_else(|e| panic!("{} x{threads}: {e}", w.name));
                assert_eq!(
                    serial.image.as_bytes(),
                    par.image.as_bytes(),
                    "{} (opt={optimized}) differs at {threads} threads",
                    w.name
                );
                assert_eq!(
                    serial.counters, par.counters,
                    "{} (opt={optimized}) counters differ at {threads} threads",
                    w.name
                );
            }
        }
    }
}

#[test]
fn verify_tables_passes_on_every_workload() {
    for w in workloads::all() {
        for optimized in [false, true] {
            build_program(w.program(), options(optimized, 4, true)).unwrap_or_else(|e| {
                panic!("{} (opt={optimized}) failed verification: {e}", w.name)
            });
        }
    }
}

#[test]
fn verify_tables_catches_corrupted_bat_entry() {
    let w = &workloads::all()[0];
    let build = build_program(w.program(), options(false, 1, false)).unwrap();
    let program = build.program;
    let mut analysis = build.analysis;
    let f = analysis
        .functions
        .iter_mut()
        .find(|f| !f.bat.is_empty())
        .expect("workload has correlations");
    let row = f.bat.values_mut().next().unwrap();
    row[0].target = 9999;
    let err = verify_tables(&program, &analysis).unwrap_err();
    assert!(
        matches!(err, TableVerifyError::BatTarget { target: 9999, .. }),
        "got {err:?}"
    );
    // Typed, displayable — and definitely not a panic.
    assert!(err.to_string().contains("9999"));
}

#[test]
fn verify_tables_catches_forged_hash() {
    let w = &workloads::all()[0];
    let build = build_program(w.program(), options(false, 1, false)).unwrap();
    let program = build.program;
    let mut analysis = build.analysis;
    let f = analysis
        .functions
        .iter_mut()
        .find(|f| f.branches.len() > 1)
        .expect("workload has branching functions");
    f.hash.log2_size = 0; // every PC now recomputes to slot 0
    let err = verify_tables(&program, &analysis).unwrap_err();
    assert!(
        matches!(
            err,
            TableVerifyError::HashSlot { .. } | TableVerifyError::HashCollision { .. }
        ),
        "got {err:?}"
    );
}

#[test]
fn pipeline_metrics_expose_compile_counters() {
    let w = &workloads::all()[0];
    let build = build_program(w.program(), options(false, 2, true)).unwrap();
    assert_eq!(
        build.metrics.counter("pipeline.branches"),
        build.counters.branches
    );
    assert_eq!(
        build.metrics.counter("pipeline.bat_entries"),
        build.counters.bat_entries
    );
    assert_eq!(
        build.metrics.counter("pipeline.image_bytes"),
        build.image.len() as u64
    );
    let pass_names: Vec<_> = build.timings.iter().map(|t| t.name).collect();
    assert_eq!(
        pass_names,
        [
            "verify-ir",
            "alias",
            "summaries",
            "analyze-functions",
            "image",
            "verify-tables"
        ]
    );
}
