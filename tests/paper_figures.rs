//! The paper's worked examples (Figures 1–4) as executable tests.

use ipds::{BranchStatus, Config, Input, Protected};

/// Figure 1: the privilege-escalation attack without code injection. Two
/// `strncmp(user, "admin")`-style checks must agree; tampering `user`
/// between them escalates privilege and is caught.
#[test]
fn figure1_attack_without_code_injection() {
    let protected = Protected::compile(
        r#"
        fn main() -> int {
            int user; int req;
            user = read_int();            // verify_user(user)
            if (user == 1) {
                print_int(100);           // limited admin prologue
            }
            req = read_int();             // strcpy(str, someinput) — the
            print_int(req);               // attacker's window
            if (user == 1) {
                print_int(999);           // superuser privilege
            } else {
                print_int(0);
            }
            return 0;
        }
        "#,
    )
    .expect("figure 1 program compiles");

    // Normal user, no tampering: both checks agree, no alarm.
    let clean = protected.run(&[Input::Int(0), Input::Int(7)]);
    assert!(!clean.detected());
    assert_eq!(clean.output, vec![7, 0]);

    // The attacker flips `user` to admin between the checks.
    let mut caught = false;
    for step in 1..40 {
        let r = protected
            .session()
            .inputs(&[Input::Int(0), Input::Int(7)])
            .tamper(step, "user", 1)
            .run()
            .unwrap();
        if r.detected() {
            caught = true;
            // Privilege escalation manifested (999 printed) — and the IPDS
            // flagged the infeasible path.
            assert!(
                r.output.contains(&999),
                "escalation visible: {:?}",
                r.output
            );
        }
    }
    assert!(
        caught,
        "the privilege escalation must be detectable at some window"
    );
}

/// Figure 2: an infeasible path caused by memory tampering. If the path
/// goes BB1→BB2→BB4 (x < 0 observed), the backward branch must be taken
/// (x < 10 as well) — x cannot have grown.
#[test]
fn figure2_loop_backward_branch_is_forced() {
    let protected = Protected::compile(
        r#"
        fn main() -> int {
            int x; int guard;
            x = read_int();
            guard = 0;
            while (x < 10 && guard < 20) {
                guard = guard + 1;
                if (x < 0) {
                    print_int(1);       // BB2
                } else {
                    print_int(2);       // BB3
                }
                print_int(3);           // BB4
            }
            return guard;
        }
        "#,
    )
    .expect("figure 2 program compiles");

    let clean = protected.run(&[Input::Int(-5)]);
    assert!(!clean.detected());

    // Tamper x to 50 mid-loop: the loop branch (x < 10) flips while the
    // compiler knows x was < 0 — an infeasible path.
    let mut caught = false;
    for step in 5..120 {
        let r = protected
            .session()
            .inputs(&[Input::Int(-5)])
            .tamper(step, "x", 50)
            .run()
            .unwrap();
        if r.detected() {
            caught = true;
            break;
        }
    }
    assert!(caught, "figure 2's infeasible path must be detected");
}

/// Figure 3.a: y < 5 subsumes y < 10 along the path that leaves y alone,
/// and a redefinition of y makes the second branch unknown.
#[test]
fn figure3a_subsume_and_redefine() {
    let protected = Protected::compile(
        r#"
        fn main() -> int {
            int x; int y;
            x = read_int();
            y = read_int();
            if (y < 5) {
                print_int(1);
            } else {
                y = read_int();        // BB4: y = new value
            }
            if (y < 10) { print_int(2); } else { print_int(3); }
            return y;
        }
        "#,
    )
    .expect("figure 3a program compiles");

    // Path through BB3 (y < 5 taken): second branch forced taken.
    let clean = protected.run(&[Input::Int(0), Input::Int(2)]);
    assert!(!clean.detected());
    // Path through BB4 (y redefined): second branch free — y = 50 is fine.
    let clean2 = protected.run(&[Input::Int(0), Input::Int(7), Input::Int(50)]);
    assert!(!clean2.detected());

    // Tampering y upward after a y<5-taken observation is infeasible.
    let mut caught = false;
    for step in 4..30 {
        let r = protected
            .session()
            .inputs(&[Input::Int(0), Input::Int(2)])
            .tamper(step, "y", 42)
            .run()
            .unwrap();
        caught |= r.detected();
    }
    assert!(caught);
}

/// Figure 3.c: the correlation survives simple arithmetic — y < 5 implies
/// y - 1 < 10.
#[test]
fn figure3c_arithmetic_chain() {
    let protected = Protected::compile(
        r#"
        fn main() -> int {
            int y;
            y = read_int();
            if (y < 5) {
                print_int(1);
                if (y - 1 < 10) { print_int(2); } else { print_int(3); }
            }
            return y;
        }
        "#,
    )
    .expect("figure 3c program compiles");

    let clean = protected.run(&[Input::Int(3)]);
    assert!(!clean.detected());
    assert_eq!(clean.output, vec![1, 2]);

    // Tamper y between the two branches: y - 1 < 10 flips — infeasible.
    let mut caught = false;
    for step in 4..20 {
        let r = protected
            .session()
            .inputs(&[Input::Int(3)])
            .tamper(step, "y", 100)
            .run()
            .unwrap();
        caught |= r.detected();
    }
    assert!(caught, "the affine correlation must catch the flip");
}

/// Figure 4's walkthrough at the BSV level: statuses evolve exactly as the
/// paper narrates (unknown → taken → unknown on redefinition).
#[test]
fn figure4_bsv_evolution() {
    let program = ipds_ir::parse(
        r#"
        fn main() -> int {
            int x; int y; int i;
            x = read_int(); y = read_int();
            for (i = 0; i < 2; i = i + 1) {
                if (y < 5) { print_int(1); }        // BR1
                if (x > 10) { x = read_int(); }     // BR2 (taken redefines x)
            }
            return 0;
        }
        "#,
    )
    .expect("figure 4 program compiles");
    let analysis = ipds_analysis::analyze_program(&program, &Config::default());
    let main = &analysis.functions[0];
    let pcs: Vec<u64> = main.branches.iter().map(|b| b.pc).collect();
    let (for_pc, y_pc, x_pc) = (pcs[0], pcs[1], pcs[2]);

    let mut ipds = ipds_runtime::IpdsChecker::new(&analysis);
    ipds.on_call(main.func);

    // Initially everything is unknown.
    assert_eq!(ipds.expected_status(y_pc), Some(BranchStatus::Unknown));

    // First iteration: BR1 taken sets its own expectation to taken.
    assert!(!ipds.on_branch(for_pc, true).alarm);
    assert!(!ipds.on_branch(y_pc, true).alarm);
    assert_eq!(ipds.expected_status(y_pc), Some(BranchStatus::Taken));

    // BR2 taken: entering the arm redefines x, so BR2 goes unknown.
    assert!(!ipds.on_branch(x_pc, true).alarm);
    assert_eq!(ipds.expected_status(x_pc), Some(BranchStatus::Unknown));

    // Second iteration: BR1 must repeat; a flip would alarm.
    assert!(!ipds.on_branch(for_pc, true).alarm);
    let out = ipds.on_branch(y_pc, false);
    assert!(out.alarm, "BR1 contradicting its status must alarm");
}
