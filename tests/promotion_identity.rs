//! The `--promote 0` identity guarantee, the strong form: running the
//! `ssa → mem2reg → deconstruct-ssa` window at a zero budget must be a
//! semantic **no-op** — the emitted `TableImage` is byte-identical to the
//! standard pipeline (which skips the window entirely at budget 0) on
//! every stock workload. This is what lets the classic all-memory path
//! and the promotion ablation share one pipeline.

use ipds::analysis::pipeline::{
    build_program, AliasPass, AnalyzeFunctionsPass, BuildOptions, CompilationSession,
    DeconstructSsaPass, ImagePass, Mem2RegPass, PassManager, SsaPass, SummariesPass, VerifyIrPass,
};
use ipds::workloads;

#[test]
fn the_ssa_window_at_budget_zero_is_byte_identical_on_every_stock_workload() {
    for w in workloads::extended() {
        let standard = build_program(w.program(), BuildOptions::default()).expect("standard build");

        // The same pipeline with the window forced in at promote = 0.
        let manager = PassManager::new()
            .with_pass(VerifyIrPass)
            .with_pass(SsaPass)
            .with_pass(Mem2RegPass)
            .with_pass(DeconstructSsaPass)
            .with_pass(AliasPass)
            .with_pass(SummariesPass)
            .with_pass(AnalyzeFunctionsPass)
            .with_pass(ImagePass);
        let mut session = CompilationSession::from_program(
            w.program(),
            BuildOptions {
                promote: 0,
                ..BuildOptions::default()
            },
        );
        manager.run(&mut session).expect("windowed build");

        let windowed = session.image.expect("image emitted");
        assert_eq!(
            standard.image.as_bytes(),
            windowed.as_bytes(),
            "{}: the zero-budget SSA window must not change the image",
            w.name
        );
        assert_eq!(
            session.metrics.counter("pipeline.promoted_vars"),
            0,
            "{}: a zero budget promotes nothing",
            w.name
        );
        assert_eq!(
            session.metrics.counter("pipeline.ssa_phis"),
            0,
            "{}: no promotion set, no phis",
            w.name
        );
    }
}

#[test]
fn every_budget_is_thread_count_invariant() {
    // The ablation's determinism leg: at each promotion level the emitted
    // image is bit-identical across 1/2/4/8 analysis threads.
    for w in workloads::extended() {
        for promote in [25, 100] {
            let mut images = Vec::new();
            for threads in [1usize, 2, 4, 8] {
                let out = build_program(
                    w.program(),
                    BuildOptions {
                        promote,
                        threads,
                        ..BuildOptions::default()
                    },
                )
                .unwrap_or_else(|e| panic!("{} @ {promote}% x{threads}: {e}", w.name));
                images.push(out.image.as_bytes().to_vec());
            }
            assert!(
                images.windows(2).all(|p| p[0] == p[1]),
                "{} @ {promote}%: images differ across thread counts",
                w.name
            );
        }
    }
}
