//! Acceptance tests for the interval refiner and the table lint auditor.
//!
//! Four invariants over the full workload suite:
//!
//! 1. **Refinement is sound and deterministic** — a refine-enabled build
//!    passes `verify-tables` on every workload under both optimizer
//!    settings, never demotes a stock directional action (they are all
//!    interval-provable), and produces bit-identical images and stats at
//!    1, 2, 4 and 8 threads.
//! 2. **Refined tables keep the zero-false-positive guarantee** — clean
//!    executions of refined programs never alarm, so the extra `SET_T` /
//!    `SET_NT` promotions the refiner adds are actually sound.
//! 3. **Stock tables lint clean** — `lint-tables` reports zero errors on
//!    every workload, and the report (including its rendering) is identical
//!    at every thread count.
//! 4. **Golden diagnostics** — a deliberately unsound BAT action seeded into
//!    a workload's tables produces at least one `LintError` carrying a
//!    concrete witness path, and the rendered report is byte-identical at
//!    1, 2, 4 and 8 threads.

use ipds::analysis::pipeline::{build_program, BuildOptions};
use ipds::analysis::{lint_program, BatEntry, BrAction, LintSeverity};
use ipds::{workloads, Protected};
use ipds_dataflow::{AliasAnalysis, Summaries};

fn refine_options(optimized: bool, threads: usize) -> BuildOptions {
    BuildOptions {
        optimize: optimized,
        threads,
        verify: true,
        refine: true,
        lint: false,
        ..BuildOptions::default()
    }
}

#[test]
fn refined_workloads_verify_and_are_deterministic() {
    for w in workloads::all() {
        for optimized in [false, true] {
            let serial = build_program(w.program(), refine_options(optimized, 1))
                .unwrap_or_else(|e| panic!("{} refined serial: {e}", w.name));
            assert_eq!(
                serial.refine.demoted, 0,
                "{} (opt={optimized}): stock directional actions must all re-prove",
                w.name
            );
            for threads in [2usize, 4, 8] {
                let par = build_program(w.program(), refine_options(optimized, threads))
                    .unwrap_or_else(|e| panic!("{} refined x{threads}: {e}", w.name));
                assert_eq!(
                    serial.image.as_bytes(),
                    par.image.as_bytes(),
                    "{} (opt={optimized}) refined image differs at {threads} threads",
                    w.name
                );
                assert_eq!(
                    serial.refine, par.refine,
                    "{} (opt={optimized}) refine stats differ at {threads} threads",
                    w.name
                );
            }
        }
    }
}

#[test]
fn refined_workloads_stay_false_positive_free() {
    for w in workloads::all() {
        let build = Protected::build()
            .refine_correlations(true)
            .verify_tables(true)
            .from_program(w.program())
            .unwrap_or_else(|e| panic!("{} refined build: {e}", w.name));
        for seed in 0..5 {
            let report = build.protected.run(&w.inputs(seed));
            assert!(
                report.alarms.is_empty(),
                "{} seed {seed} alarmed under refined tables: {:?}",
                w.name,
                report.alarms
            );
        }
    }
}

#[test]
fn stock_workloads_lint_clean_at_every_thread_count() {
    for w in workloads::all() {
        let lint_at = |threads| {
            Protected::build()
                .threads(threads)
                .lint_tables(true)
                .from_program(w.program())
                .unwrap_or_else(|e| panic!("{} lint build: {e}", w.name))
                .lint
                .expect("lint was requested")
        };
        let serial = lint_at(1);
        assert_eq!(
            serial.error_count(),
            0,
            "{} must lint clean:\n{serial}",
            w.name
        );
        for threads in [2usize, 4, 8] {
            let par = lint_at(threads);
            assert_eq!(
                serial, par,
                "{} lint report differs at {threads} threads",
                w.name
            );
            assert_eq!(
                serial.to_string(),
                par.to_string(),
                "{} rendered report differs at {threads} threads",
                w.name
            );
        }
    }
}

#[test]
fn seeded_unsound_action_yields_a_stable_error_report() {
    let w = &workloads::all()[0];
    let build = build_program(w.program(), BuildOptions::default()).unwrap();
    let program = build.program;
    let alias = AliasAnalysis::analyze(&program);
    let summaries = Summaries::compute(&program, &alias);
    let intervals = ipds_absint::analyze_program(&program, &alias, &summaries);

    // Seed the first row whose corruption actually surfaces as an error:
    // claiming the trigger branch itself went the *opposite* way on an edge
    // is unsound by construction, so the auditor must either contradict it
    // (feasible edge) or — on a statically dead edge — keep hunting.
    let mut seeded = None;
    'hunt: for (fi, func) in build.analysis.functions.iter().enumerate() {
        for &(trigger, dir) in func.bat.keys() {
            let mut analysis = build.analysis.clone();
            let row = analysis.functions[fi].bat.get_mut(&(trigger, dir)).unwrap();
            row.push(BatEntry {
                target: trigger,
                action: if dir {
                    BrAction::SetNotTaken
                } else {
                    BrAction::SetTaken
                },
            });
            row.sort_by_key(|e| e.target);
            let report = lint_program(&program, &alias, &summaries, &intervals, &analysis, 1);
            if report.error_count() > 0 {
                seeded = Some((analysis, report));
                break 'hunt;
            }
        }
    }
    let (analysis, serial) = seeded.expect("some feasible row must reject the forged action");

    assert!(serial.error_count() >= 1, "forged action must be an error");
    let err = serial
        .errors()
        .next()
        .expect("error_count >= 1 implies an error");
    assert_eq!(err.severity, LintSeverity::Error);
    assert!(
        !err.witness.is_empty(),
        "diagnostics must carry a concrete witness path"
    );
    let rendered = serial.to_string();
    assert!(
        rendered.contains("witness:"),
        "rendered report must show the witness:\n{rendered}"
    );
    assert!(
        rendered.contains(&err.function),
        "rendered report must name the function:\n{rendered}"
    );

    // The report — struct and rendering — must be bit-stable across shards.
    for threads in [2usize, 4, 8] {
        let par = lint_program(&program, &alias, &summaries, &intervals, &analysis, threads);
        assert_eq!(serial, par, "lint report differs at {threads} threads");
        assert_eq!(
            rendered,
            par.to_string(),
            "rendered report differs at {threads} threads"
        );
    }
}
