//! The compiler→binary→runtime hand-off: the serialized table image must
//! drive the checker identically to the in-memory analysis.

use ipds::{Config, Protected};
use ipds_analysis::TableImage;
use ipds_runtime::IpdsChecker;
use ipds_sim::{ExecLimits, Interp, IpdsObserver};

#[test]
fn loaded_image_checks_identically_on_every_workload() {
    for w in ipds_workloads::all() {
        let protected = Protected::from_program(w.program(), &Config::default());
        let image = TableImage::build(&protected.analysis);
        let loaded = image.load().expect("image loads");
        let inputs = w.inputs(4);

        let run = |analysis: &ipds_analysis::ProgramAnalysis| {
            let mut obs = IpdsObserver::new(IpdsChecker::new(analysis));
            obs.checker.on_call(protected.program.main().unwrap().id);
            let mut interp = Interp::new(&protected.program, inputs.clone(), ExecLimits::default());
            interp.run(&mut obs);
            (obs.checker.alarms().to_vec(), *obs.checker.stats())
        };

        let (alarms_a, stats_a) = run(&protected.analysis);
        let (alarms_b, stats_b) = run(&loaded);
        assert_eq!(alarms_a, alarms_b, "{}", w.name);
        assert_eq!(stats_a, stats_b, "{}", w.name);
        assert!(alarms_a.is_empty(), "{}: clean run must stay clean", w.name);
    }
}

#[test]
fn loaded_image_detects_the_same_attack() {
    let src = "fn main() -> int { int user; user = read_int(); \
               if (user == 1) { print_int(1); } \
               print_int(read_int()); \
               if (user == 1) { print_int(2); } else { print_int(3); } \
               return 0; }";
    let protected = Protected::compile(src).unwrap();
    let loaded = TableImage::build(&protected.analysis).load().unwrap();
    let reloaded = Protected {
        program: protected.program.clone(),
        analysis: loaded,
    };
    let inputs = [ipds::Input::Int(0), ipds::Input::Int(9)];
    let a = protected
        .session()
        .inputs(&inputs)
        .tamper(8, "user", 1)
        .run()
        .unwrap();
    let b = reloaded
        .session()
        .inputs(&inputs)
        .tamper(8, "user", 1)
        .run()
        .unwrap();
    assert!(a.detected() && b.detected());
    assert_eq!(a.alarms, b.alarms);
}

#[test]
fn image_sizes_are_modest() {
    // The attachable blob should be on the order of the table bits it
    // carries, not megabytes: overhead stays bounded.
    for w in ipds_workloads::all() {
        let protected = Protected::from_program(w.program(), &Config::default());
        let image = TableImage::build(&protected.analysis);
        let table_bits: usize = protected
            .analysis
            .functions
            .iter()
            .map(|f| f.sizes.total())
            .sum();
        let image_bits = image.len() * 8;
        assert!(
            image_bits < table_bits * 4 + 4096,
            "{}: image {} bits vs tables {} bits",
            w.name,
            image_bits,
            table_bits
        );
    }
}
