//! Workspace-level guarantee for the parallel campaign engine: for every
//! workload and every attack model, the persistent worker pool produces
//! results bit-identical to the serial path, and the whole protocol is
//! deterministic under the in-repo RNG (same seed ⇒ same figures, on any
//! machine, at any thread count, no matter how many campaigns already ran
//! through the pool). Telemetry rides the same guarantee: all sink and
//! metric aggregation commutes, so counter snapshots and merged
//! registries are bit-identical too.

use ipds::telemetry::{CounterSnapshot, CountingSink, MetricsRegistry};
use ipds_sim::AttackModel;

const ATTACKS: u32 = 24;
const SEED: u64 = 2006;
const INPUT_SEED: u64 = 2006;

fn protect(w: &ipds_workloads::Workload) -> ipds::Protected {
    ipds::Protected::from_program(w.program(), &ipds::Config::default())
}

fn campaign_pair(
    w: &ipds_workloads::Workload,
    model: AttackModel,
    threads: usize,
) -> (ipds::CampaignResult, ipds::CampaignResult) {
    let protected = protect(w);
    let inputs = w.inputs(INPUT_SEED);
    let serial = protected
        .campaign_spec()
        .inputs(&inputs)
        .attacks(ATTACKS)
        .seed(SEED)
        .model(model)
        .run();
    let parallel = protected
        .campaign_spec()
        .inputs(&inputs)
        .attacks(ATTACKS)
        .seed(SEED)
        .model(model)
        .threads(threads)
        .run();
    (serial, parallel)
}

/// Runs one instrumented campaign and returns everything telemetry
/// produces alongside the result.
fn instrumented(
    w: &ipds_workloads::Workload,
    threads: usize,
) -> (ipds::CampaignResult, CounterSnapshot, MetricsRegistry) {
    let protected = protect(w);
    let inputs = w.inputs(INPUT_SEED);
    let sink = CountingSink::new();
    let (result, metrics) = protected
        .campaign_spec()
        .inputs(&inputs)
        .attacks(ATTACKS)
        .seed(SEED)
        .model(w.vuln)
        .threads(threads)
        .sink(&sink)
        .run_metered();
    (result, sink.snapshot(), metrics)
}

#[test]
fn parallel_is_bit_identical_to_serial_on_every_workload() {
    for w in ipds_workloads::all() {
        for model in [AttackModel::FormatString, AttackModel::ContiguousOverflow] {
            let (serial, parallel) = campaign_pair(&w, model, 4);
            assert_eq!(serial, parallel, "{}/{model:?}", w.name);
            // PartialEq on f64 can hide NaN or -0.0 mismatches; the mean
            // lag must match to the bit.
            assert_eq!(
                serial.mean_lag_branches.to_bits(),
                parallel.mean_lag_branches.to_bits(),
                "{}/{model:?}",
                w.name
            );
        }
    }
}

#[test]
fn campaigns_are_deterministic_under_the_in_repo_rng() {
    // Two independent Protected instances and input scripts: nothing may
    // leak state between campaigns, and the seeded protocol alone must
    // pin every figure.
    for w in ipds_workloads::all() {
        let (a_serial, a_par) = campaign_pair(&w, w.vuln, 3);
        let (b_serial, b_par) = campaign_pair(&w, w.vuln, 7);
        assert_eq!(a_serial, b_serial, "{} serial reruns must agree", w.name);
        assert_eq!(a_par, b_par, "{} parallel reruns must agree", w.name);
        assert_eq!(a_serial, b_par, "{} thread count must not matter", w.name);
    }
}

#[test]
fn counting_sink_is_bit_identical_across_thread_counts() {
    for w in ipds_workloads::all() {
        let (base_result, base_counts, base_metrics) = instrumented(&w, 1);
        assert_eq!(base_counts.attacks, u64::from(ATTACKS), "{}", w.name);
        assert_eq!(
            base_counts.detections,
            u64::from(base_result.detected),
            "{}",
            w.name
        );
        assert_eq!(
            base_metrics.counter("attacks_detected"),
            u64::from(base_result.detected),
            "{}",
            w.name
        );
        for threads in [2, 4] {
            let (result, counts, metrics) = instrumented(&w, threads);
            assert_eq!(base_result, result, "{} @ {threads} threads", w.name);
            assert_eq!(base_counts, counts, "{} @ {threads} threads", w.name);
            // Chunk accounting observes the scheduler and is the one
            // telemetry pair allowed to vary with thread count (see
            // docs/PERF.md); every other key must merge identically.
            let stable = |m: &ipds::telemetry::MetricsRegistry| {
                m.counters()
                    .filter(|(k, _)| *k != "pool.chunks_claimed" && *k != "pool.chunks_stolen")
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                stable(&base_metrics),
                stable(&metrics),
                "{} @ {threads} threads",
                w.name
            );
            assert_eq!(
                base_metrics.histograms().collect::<Vec<_>>(),
                metrics.histograms().collect::<Vec<_>>(),
                "{} @ {threads} threads",
                w.name
            );
        }
    }
}

#[test]
fn null_sink_campaign_matches_uninstrumented_engine() {
    // Attaching the default NullSink must not perturb the protocol: the
    // result has to be byte-identical to the plain engine's.
    for w in ipds_workloads::all() {
        let protected = protect(&w);
        let inputs = w.inputs(INPUT_SEED);
        let plain = protected
            .campaign_spec()
            .inputs(&inputs)
            .attacks(ATTACKS)
            .seed(SEED)
            .model(w.vuln)
            .run();
        for threads in [1, 4] {
            let with_null = protected
                .campaign_spec()
                .inputs(&inputs)
                .attacks(ATTACKS)
                .seed(SEED)
                .model(w.vuln)
                .threads(threads)
                .run();
            assert_eq!(plain, with_null, "{} @ {threads} threads", w.name);
            assert_eq!(
                plain.mean_lag_branches.to_bits(),
                with_null.mean_lag_branches.to_bits(),
                "{} @ {threads} threads",
                w.name
            );
        }
    }
}

#[test]
fn repeated_campaigns_reuse_the_persistent_pool_bit_identically() {
    // 100 consecutive campaigns through the shared persistent pool, with
    // the golden run and warm start captured once and amortized across
    // all of them: every repetition at every thread count must match the
    // first serial result bit for bit. This is the regression shape that
    // motivated the pool rework — a campaign-per-shard driver hammering
    // the engine in a loop.
    let w = ipds_workloads::all()
        .into_iter()
        .find(|w| w.name == "telnetd")
        .unwrap();
    let protected = protect(&w);
    let inputs = w.inputs(INPUT_SEED);
    let (golden, limits) = protected.campaign_artifacts(&inputs);
    let warm = protected.warm_start(&inputs, &golden, limits);
    let run = |threads: usize| {
        protected
            .campaign_spec()
            .inputs(&inputs)
            .attacks(ATTACKS)
            .seed(SEED)
            .model(w.vuln)
            .threads(threads)
            .golden(&golden, limits)
            .warm_start(&warm)
            .run()
    };
    let base = run(1);
    for round in 0..25 {
        for threads in [1, 2, 4, 8] {
            assert_eq!(base, run(threads), "round {round} @ {threads} threads");
        }
    }
}

#[test]
fn attack_step_histogram_accounts_for_every_attack() {
    let w = ipds_workloads::all()
        .into_iter()
        .find(|w| w.name == "telnetd")
        .unwrap();
    let (_, counts, metrics) = instrumented(&w, 4);
    let steps = metrics.histogram("attack_steps").expect("attack_steps");
    assert_eq!(steps.count, u64::from(ATTACKS));
    assert_eq!(counts.tampers, metrics.counter("attacks_tampered"));
    // Detection lag is only recorded for detected attacks.
    if let Some(lag) = metrics.histogram("detection_lag_branches") {
        assert_eq!(lag.count, counts.detections);
    } else {
        assert_eq!(counts.detections, 0);
    }
}
