//! Workspace-level guarantee for the parallel campaign engine: for every
//! workload and every attack model, the scoped-thread pool produces results
//! bit-identical to the serial path, and the whole protocol is
//! deterministic under the in-repo RNG (same seed ⇒ same figures, on any
//! machine, at any thread count).

use ipds_sim::AttackModel;

const ATTACKS: u32 = 24;
const SEED: u64 = 2006;
const INPUT_SEED: u64 = 2006;

fn campaign_pair(
    w: &ipds_workloads::Workload,
    model: AttackModel,
    threads: usize,
) -> (ipds::CampaignResult, ipds::CampaignResult) {
    let protected = ipds::Protected::from_program(w.program(), &ipds::Config::default());
    let inputs = w.inputs(INPUT_SEED);
    let serial = protected.campaign(&inputs, ATTACKS, SEED, model);
    let parallel = protected.campaign_threaded(&inputs, ATTACKS, SEED, model, threads);
    (serial, parallel)
}

#[test]
fn parallel_is_bit_identical_to_serial_on_every_workload() {
    for w in ipds_workloads::all() {
        for model in [AttackModel::FormatString, AttackModel::ContiguousOverflow] {
            let (serial, parallel) = campaign_pair(&w, model, 4);
            assert_eq!(serial, parallel, "{}/{model:?}", w.name);
            // PartialEq on f64 can hide NaN or -0.0 mismatches; the mean
            // lag must match to the bit.
            assert_eq!(
                serial.mean_lag_branches.to_bits(),
                parallel.mean_lag_branches.to_bits(),
                "{}/{model:?}",
                w.name
            );
        }
    }
}

#[test]
fn campaigns_are_deterministic_under_the_in_repo_rng() {
    // Two independent Protected instances and input scripts: nothing may
    // leak state between campaigns, and the seeded protocol alone must
    // pin every figure.
    for w in ipds_workloads::all() {
        let (a_serial, a_par) = campaign_pair(&w, w.vuln, 3);
        let (b_serial, b_par) = campaign_pair(&w, w.vuln, 7);
        assert_eq!(a_serial, b_serial, "{} serial reruns must agree", w.name);
        assert_eq!(a_par, b_par, "{} parallel reruns must agree", w.name);
        assert_eq!(a_serial, b_par, "{} thread count must not matter", w.name);
    }
}
