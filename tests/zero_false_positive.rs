//! The headline invariant: **zero false positives**.
//!
//! "The IPDS achieves a zero false positive rate since it always acts
//! conservatively and only raises an alarm when it is completely sure that
//! an attack is ongoing." Any clean execution of any program must run
//! alarm-free. We check this over the hand-written server suite and over
//! randomly generated programs (property-based).

use ipds::{Config, Input, Protected};
use ipds_sim::ExecLimits;
use ipds_workloads::generator::{generate_program, GenConfig};
use proptest::prelude::*;

#[test]
fn workloads_are_false_positive_free_across_many_seeds() {
    for w in ipds_workloads::all() {
        let protected = Protected::from_program(w.program(), &Config::default());
        for seed in 0..20 {
            let report = protected.run(&w.inputs(seed));
            assert!(
                report.alarms.is_empty(),
                "{} seed {seed} raised {:?}",
                w.name,
                report.alarms
            );
        }
    }
}

#[test]
fn workloads_stay_clean_with_const_store_extension() {
    let cfg = Config {
        const_store: true,
        ..Config::default()
    };
    for w in ipds_workloads::all() {
        let protected = Protected::from_program(w.program(), &cfg);
        for seed in 0..10 {
            let report = protected.run(&w.inputs(seed));
            assert!(
                report.alarms.is_empty(),
                "{} seed {seed} (const-store) raised {:?}",
                w.name,
                report.alarms
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random programs, random input streams, every analysis variant:
    /// never an alarm without tampering.
    #[test]
    fn random_programs_never_false_alarm(
        seed in 0u64..10_000,
        input_seed in 0u64..1000,
        store_anchors in proptest::bool::ANY,
        const_store in proptest::bool::ANY,
    ) {
        let src = generate_program(seed, GenConfig::default());
        let cfg = Config {
            store_anchors,
            const_store,
            ..Config::default()
        };
        let protected = Protected::compile_with(&src, &cfg).expect("generated program compiles");
        let inputs: Vec<Input> = (0..48)
            .map(|i| Input::Int(((input_seed as i64).wrapping_mul(31) + i * 7) % 41 - 20))
            .collect();
        let report = protected.run_limited(
            &inputs,
            ExecLimits { max_steps: 2_000_000, max_depth: 64 },
        );
        prop_assert!(
            report.alarms.is_empty(),
            "seed {} raised {:?}\n{}",
            seed,
            report.alarms,
            src
        );
    }

    /// Tampering may or may not be detected, but a detection must imply the
    /// control flow actually changed (consistency of the experiment
    /// machinery itself).
    #[test]
    fn detection_implies_control_flow_change(
        seed in 0u64..2000,
        attack_seed in 0u64..1000,
    ) {
        let src = generate_program(seed, GenConfig::default());
        let program = ipds_ir::parse(&src).expect("generated program compiles");
        let analysis = ipds_analysis::analyze_program(&program, &Config::default());
        let inputs: Vec<Input> = (0..48).map(|i| Input::Int(i % 13 - 6)).collect();
        let limits = ExecLimits { max_steps: 2_000_000, max_depth: 64 };
        let (golden, steps, _) = ipds_sim::attack::golden_run(&program, &inputs, limits);
        prop_assume!(steps > 4);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(attack_seed);
        let trigger = 1 + attack_seed % (steps - 2);
        let outcome = ipds_sim::attack::run_attack(
            &program,
            &analysis,
            &inputs,
            &golden,
            trigger,
            ipds_sim::AttackModel::FormatString,
            &mut rng,
            limits,
        );
        prop_assert!(
            !outcome.detected || outcome.control_flow_changed,
            "alarm without control-flow change: {outcome:?}\n{src}"
        );
    }
}
