//! The headline invariant: **zero false positives**.
//!
//! "The IPDS achieves a zero false positive rate since it always acts
//! conservatively and only raises an alarm when it is completely sure that
//! an attack is ongoing." Any clean execution of any program must run
//! alarm-free. We check this over the hand-written server suite here;
//! randomly generated programs are hammered in
//! `zero_false_positive_props.rs` (feature `props`).

use ipds::{Config, Protected};

#[test]
fn workloads_are_false_positive_free_across_many_seeds() {
    for w in ipds_workloads::all() {
        let protected = Protected::from_program(w.program(), &Config::default());
        for seed in 0..20 {
            let report = protected.run(&w.inputs(seed));
            assert!(
                report.alarms.is_empty(),
                "{} seed {seed} raised {:?}",
                w.name,
                report.alarms
            );
        }
    }
}

#[test]
fn workloads_stay_clean_with_const_store_extension() {
    let cfg = Config {
        const_store: true,
        ..Config::default()
    };
    for w in ipds_workloads::all() {
        let protected = Protected::from_program(w.program(), &cfg);
        for seed in 0..10 {
            let report = protected.run(&w.inputs(seed));
            assert!(
                report.alarms.is_empty(),
                "{} seed {seed} (const-store) raised {:?}",
                w.name,
                report.alarms
            );
        }
    }
}
