//! Store-anchored correlations on register-allocated-style IR.
//!
//! MiniC reloads every variable before testing it, so load anchors shadow
//! store anchors. The paper's compiler (MachSUIF with a graph-coloring
//! register allocator) frequently branches on the *register that was just
//! stored* — Fig. 3.b — which only store anchors can correlate. This test
//! builds that shape directly in IR and shows detection exists exactly when
//! store anchors are enabled.

use ipds_analysis::{analyze_program, AnalysisConfig, BranchStatus};
use ipds_ir::builder::{assemble, FunctionBuilder};
use ipds_ir::{Builtin, Operand, Pred};
use ipds_runtime::IpdsChecker;

/// Builds:
///
/// ```text
/// entry: r0 = call read_int()
///        store x, r0
///        r1 = cmp.eq r0, 1          // branches on the REGISTER, not a reload
///        br r1 ? b_t : b_f
/// b_t:   jump join
/// b_f:   jump join
/// join:  r2 = load x
///        r3 = cmp.eq r2, 1          // load-anchored target
///        br r3 ? e1 : e2
/// e1:    ret 1
/// e2:    ret 0
/// ```
fn register_allocated_program() -> ipds_ir::Program {
    let mut b = FunctionBuilder::new("main", 0, true);
    let x = b.add_scalar("x");
    let b_t = b.add_block();
    let b_f = b.add_block();
    let join = b.add_block();
    let e1 = b.add_block();
    let e2 = b.add_block();

    let r0 = b.call_builtin(Builtin::ReadInt, vec![]).expect("result");
    b.store_var(x, r0.into());
    let r1 = b.cmp(Pred::Eq, r0.into(), Operand::Imm(1));
    b.branch(r1, b_t, b_f);

    b.switch_to(b_t);
    b.jump(join);
    b.switch_to(b_f);
    b.jump(join);

    b.switch_to(join);
    let r2 = b.load_var(x);
    let r3 = b.cmp(Pred::Eq, r2.into(), Operand::Imm(1));
    b.branch(r3, e1, e2);

    b.switch_to(e1);
    b.ret(Some(Operand::Imm(1)));
    b.switch_to(e2);
    b.ret(Some(Operand::Imm(0)));

    assemble(vec![], vec![b.finish()]).expect("valid IR")
}

fn replay(analysis: &ipds_analysis::ProgramAnalysis, dirs: &[bool]) -> bool {
    let main = &analysis.functions[0];
    let pcs: Vec<u64> = main.branches.iter().map(|b| b.pc).collect();
    let mut ipds = IpdsChecker::new(analysis);
    ipds.on_call(main.func);
    let mut alarmed = false;
    for (i, &d) in dirs.iter().enumerate() {
        alarmed |= ipds.on_branch(pcs[i % pcs.len()], d).alarm;
    }
    alarmed
}

#[test]
fn store_anchor_correlates_register_branch_with_reload() {
    let program = register_allocated_program();
    let full = analyze_program(&program, &AnalysisConfig::default());
    let main = &full.functions[0];
    assert_eq!(main.branches.len(), 2);

    // With store anchors: the register branch (index 0) carries directional
    // actions for the reload branch (index 1).
    let row = full.of(ipds_ir::FuncId(0)).actions(0, false);
    assert!(
        row.iter()
            .any(|e| e.target == 1 && e.action == ipds_analysis::BrAction::SetNotTaken),
        "store anchor must force the reload branch: {row:?}"
    );

    // Dynamic check: x != 1 observed at the register branch, then the
    // reload branch claims x == 1 — infeasible (the tampered path).
    assert!(
        replay(&full, &[false, true]),
        "tampered path must alarm with store anchors"
    );
    // The honest path is fine.
    assert!(!replay(&full, &[false, false]));
    assert!(!replay(&full, &[true, true]));
}

#[test]
fn without_store_anchors_the_same_attack_is_missed() {
    let program = register_allocated_program();
    let cfg = AnalysisConfig {
        store_anchors: false,
        ..AnalysisConfig::default()
    };
    let reduced = analyze_program(&program, &cfg);
    // The register branch has no load anchor, so nothing triggers on it.
    assert!(
        reduced.of(ipds_ir::FuncId(0)).actions(0, false).is_empty(),
        "no store anchors ⇒ no trigger on the register branch"
    );
    // The infeasible path slides through unverified.
    assert!(!replay(&reduced, &[false, true]));
}

#[test]
fn store_anchor_status_evolution() {
    // BSV-level view: after the register branch commits not-taken, the
    // reload branch's expected status must be NotTaken.
    let program = register_allocated_program();
    let analysis = analyze_program(&program, &AnalysisConfig::default());
    let main = &analysis.functions[0];
    let pcs: Vec<u64> = main.branches.iter().map(|b| b.pc).collect();
    let mut ipds = IpdsChecker::new(&analysis);
    ipds.on_call(main.func);
    assert_eq!(ipds.expected_status(pcs[1]), Some(BranchStatus::Unknown));
    ipds.on_branch(pcs[0], false);
    assert_eq!(ipds.expected_status(pcs[1]), Some(BranchStatus::NotTaken));
    ipds.on_branch(pcs[0], true);
    assert_eq!(ipds.expected_status(pcs[1]), Some(BranchStatus::Taken));
}
