//! Regression bands for the experiment drivers.
//!
//! Everything is seeded and deterministic, so these run the (small) versions
//! of each experiment and pin the results to bands around the currently
//! measured values. A change that moves a number out of its band is either
//! a bug or a deliberate recalibration — either way it should be noticed,
//! and EXPERIMENTS.md updated alongside this file.

use ipds_runtime::HwConfig;

#[test]
fn fig8_table_sizes_band() {
    let r = ipds_bench::fig8::run();
    let m = &r.merged;
    // Currently ~37.9 / 18.9 / 412.6 (paper: 34 / 17 / 393).
    assert!(m.avg_bsv_bits > 20.0 && m.avg_bsv_bits < 70.0, "{m:?}");
    assert!(m.avg_bcv_bits > 10.0 && m.avg_bcv_bits < 35.0, "{m:?}");
    assert!(m.avg_bat_bits > 200.0 && m.avg_bat_bits < 800.0, "{m:?}");
    assert!((m.avg_bsv_bits - 2.0 * m.avg_bcv_bits).abs() < 1e-9);
}

#[test]
fn fig7_detection_band() {
    // 30 attacks per workload keeps this quick in debug; bands are wide
    // accordingly.
    let rows = ipds_bench::fig7::run(30, 2006, 2006);
    let (cf, det, given) = ipds_bench::fig7::averages(&rows);
    assert!(cf > 0.15 && cf < 0.65, "cf-changed {cf}");
    assert!(det > 0.03 && det < 0.40, "detected {det}");
    assert!(given > 0.15 && given < 0.75, "det|cf {given}");
    for r in &rows {
        assert!(r.detected_rate <= r.cf_changed_rate + 1e-9, "{r:?}");
    }
}

#[test]
fn fig9_overhead_band() {
    let rows = ipds_bench::fig9::run(&HwConfig::table1_default(), 2006);
    let mean = ipds_bench::fig9::mean_normalized(&rows);
    // Currently ~1.015 (paper 1.0079).
    assert!((1.0 - 1e-9..1.06).contains(&mean), "mean normalized {mean}");
    for r in &rows {
        assert!(r.normalized < 1.15, "{r:?}");
    }
}

#[test]
fn latency_band() {
    let rows = ipds_bench::latency::run(&HwConfig::table1_default(), 2006);
    let mean = ipds_bench::latency::mean(&rows);
    // Currently ~10.9 (paper 11.7).
    assert!(mean > 2.0 && mean < 25.0, "mean latency {mean}");
    for r in &rows {
        assert!(r.p50_cycles <= r.p95_cycles + 1e-9, "{r:?}");
        assert!(r.mean_cycles < 60.0, "{r:?}");
    }
}

#[test]
fn context_switch_band() {
    let rows = ipds_bench::context::run(&HwConfig::table1_default());
    for (pair, strategies) in &rows {
        // Blocking costs sit in the hundreds of cycles, not millions.
        for s in strategies {
            assert!(s.blocking_cycles < 5_000, "{pair}: {s:?}");
        }
    }
}

#[test]
fn experiments_are_deterministic() {
    let a = ipds_bench::fig7::run(15, 7, 7);
    let b = ipds_bench::fig7::run(15, 7, 7);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.cf_changed_rate, y.cf_changed_rate, "{}", x.name);
        assert_eq!(x.detected_rate, y.detected_rate, "{}", x.name);
    }
}
