//! The load-forwarding optimizer: semantics preserved, correlations lost.

use ipds::{Config, Input, Protected};
use ipds_ir::opt::forward_loads;
use ipds_sim::{ExecLimits, ExecStatus, Interp, NullObserver};
use ipds_workloads::generator::{generate_program, GenConfig};

fn outputs(program: &ipds_ir::Program, inputs: &[Input]) -> (ExecStatus, Vec<i64>) {
    let mut i = Interp::new(program, inputs.to_vec(), ExecLimits::default());
    let s = i.run(&mut NullObserver);
    (s, i.output().to_vec())
}

#[test]
fn optimizer_preserves_workload_semantics() {
    for w in ipds_workloads::all() {
        let plain = w.program();
        let mut optimized = w.program();
        let stats = forward_loads(&mut optimized);
        ipds_ir::verify::verify_program(&optimized).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(stats.loads_removed > 0, "{}: nothing forwarded?", w.name);
        for seed in 0..5 {
            let inputs = w.inputs(seed);
            let a = outputs(&plain, &inputs);
            let b = outputs(&optimized, &inputs);
            assert_eq!(a, b, "{} diverged at seed {seed}", w.name);
        }
    }
}

#[test]
fn optimizer_preserves_random_program_semantics() {
    for seed in 0..30 {
        let src = generate_program(seed, GenConfig::default());
        let plain = ipds_ir::parse(&src).unwrap();
        let mut optimized = plain.clone();
        forward_loads(&mut optimized);
        ipds_ir::verify::verify_program(&optimized)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        let inputs: Vec<Input> = (0..48)
            .map(|i| Input::Int((seed as i64 + i) % 17 - 8))
            .collect();
        let a = outputs(&plain, &inputs);
        let b = outputs(&optimized, &inputs);
        assert_eq!(a, b, "seed {seed} diverged\n{src}");
    }
}

#[test]
fn optimized_programs_stay_false_positive_free() {
    for w in ipds_workloads::all() {
        let mut program = w.program();
        forward_loads(&mut program);
        let protected = Protected::from_program(program, &Config::default());
        for seed in 0..5 {
            let r = protected.run(&w.inputs(seed));
            assert!(
                r.alarms.is_empty(),
                "{} optimized raised {:?}",
                w.name,
                r.alarms
            );
        }
    }
}

#[test]
fn optimization_reduces_correlation_surface() {
    // The paper: "compiler optimizations can remove some correlations,
    // reducing the detection rate." Forwarding removes reloads, and with
    // them load anchors: the checked-branch count must not grow, and across
    // the whole suite it must strictly shrink.
    let mut total_plain = 0usize;
    let mut total_opt = 0usize;
    for w in ipds_workloads::all() {
        let plain = Protected::from_program(w.program(), &Config::default());
        let mut op = w.program();
        forward_loads(&mut op);
        let optimized = Protected::from_program(op, &Config::default());
        let p = plain.analysis.checked_count();
        let o = optimized.analysis.checked_count();
        assert!(
            o <= p,
            "{}: optimization grew the checked set {p} -> {o}",
            w.name
        );
        total_plain += p;
        total_opt += o;
    }
    assert!(
        total_opt < total_plain,
        "forwarding should remove some correlations: {total_plain} -> {total_opt}"
    );
}
