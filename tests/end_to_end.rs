//! Cross-crate integration: compile → analyze → run → attack → time, over
//! the full workload suite.

use ipds::{Config, Protected};
use ipds_runtime::HwConfig;
use ipds_sim::AttackModel;

#[test]
fn campaigns_detect_something_on_every_correlated_workload() {
    // Every workload has correlated scalar state; a big enough seeded
    // campaign must land at least one detected attack.
    for w in ipds_workloads::all() {
        let protected = Protected::from_program(w.program(), &Config::default());
        let inputs = w.inputs(1);
        let r = protected
            .campaign_spec()
            .inputs(&inputs)
            .attacks(60)
            .seed(99)
            .model(w.vuln)
            .run();
        assert!(
            r.cf_changed > 0,
            "{}: no attack changed control flow",
            w.name
        );
        assert!(
            r.detected > 0,
            "{}: nothing detected out of {} cf-changing attacks",
            w.name,
            r.cf_changed
        );
        assert!(r.detected <= r.cf_changed, "{}: {r:?}", w.name);
    }
}

#[test]
fn campaigns_are_reproducible() {
    let w = ipds_workloads::by_name("httpd").unwrap();
    let protected = Protected::from_program(w.program(), &Config::default());
    let inputs = w.inputs(3);
    let a = protected
        .campaign_spec()
        .inputs(&inputs)
        .attacks(30)
        .seed(5)
        .model(AttackModel::BufferOverflow)
        .run();
    let b = protected
        .campaign_spec()
        .inputs(&inputs)
        .attacks(30)
        .seed(5)
        .model(AttackModel::BufferOverflow)
        .run();
    assert_eq!(a, b, "same seed must reproduce exactly");
}

#[test]
fn timing_runs_preserve_function_and_bound_overhead() {
    let hw = HwConfig::table1_default();
    for w in ipds_workloads::all() {
        let protected = Protected::from_program(w.program(), &Config::default());
        let inputs = w.inputs(2);
        let base = protected.timed_baseline(&inputs, &hw);
        let with = protected.timed(&inputs, &hw);
        assert_eq!(base.instructions, with.instructions, "{}", w.name);
        assert_eq!(base.branches, with.branches, "{}", w.name);
        assert_eq!(with.alarms, 0, "{}: clean timed run alarmed", w.name);
        let norm = with.cycles as f64 / base.cycles.max(1) as f64;
        assert!(norm >= 1.0 - 1e-9, "{}: {norm}", w.name);
        assert!(norm < 1.25, "{}: overhead {norm} out of band", w.name);
    }
}

#[test]
fn perfect_hash_is_collision_free_for_every_function() {
    for w in ipds_workloads::all() {
        let protected = Protected::from_program(w.program(), &Config::default());
        for f in &protected.analysis.functions {
            let mut seen = std::collections::HashSet::new();
            for b in &f.branches {
                assert_eq!(b.slot, f.hash.slot(b.pc), "{}::{}", w.name, f.name);
                assert!(
                    seen.insert(b.slot),
                    "{}::{} has a hash collision",
                    w.name,
                    f.name
                );
                assert!(b.slot < f.hash.space());
            }
        }
    }
}

#[test]
fn bat_encoding_roundtrips_for_every_function() {
    for w in ipds_workloads::all() {
        let protected = Protected::from_program(w.program(), &Config::default());
        for f in &protected.analysis.functions {
            let bytes = ipds_analysis::encode::encode_bat(&f.bat, &f.branches, &f.hash);
            let back = ipds_analysis::encode::decode_bat(&bytes, &f.branches, &f.hash)
                .unwrap_or_else(|| panic!("{}::{} failed to decode", w.name, f.name));
            assert_eq!(back, f.bat, "{}::{}", w.name, f.name);
            assert!(
                f.sizes.bat_bits <= bytes.len() * 8,
                "{}::{} size accounting exceeds the encoding",
                w.name,
                f.name
            );
        }
    }
}

#[test]
fn ablation_variants_analyze_every_workload() {
    for variant in [
        Config::default(),
        Config {
            store_anchors: false,
            ..Config::default()
        },
        Config {
            load_anchors: false,
            ..Config::default()
        },
        Config {
            const_store: true,
            ..Config::default()
        },
    ] {
        for w in ipds_workloads::all() {
            let protected = Protected::from_program(w.program(), &variant);
            // Clean runs stay clean under every variant.
            let r = protected.run(&w.inputs(0));
            assert!(r.alarms.is_empty(), "{} under {variant:?}", w.name);
        }
    }
}

#[test]
fn detection_lag_is_reported_in_branches() {
    let w = ipds_workloads::by_name("telnetd").unwrap();
    let protected = Protected::from_program(w.program(), &Config::default());
    let inputs = w.inputs(0);
    let r = protected
        .campaign_spec()
        .inputs(&inputs)
        .attacks(80)
        .seed(17)
        .model(AttackModel::BufferOverflow)
        .run();
    if r.detected > 0 {
        assert!(r.mean_lag_branches >= 0.0);
        // A detection within the same session should happen within the
        // session's branch budget.
        assert!(r.mean_lag_branches < 10_000.0, "{r:?}");
    }
}

#[test]
fn contiguous_overflows_hit_harder_than_single_cells() {
    // The block-smash model perturbs 2-8 cells per attack: across the
    // suite it must change control flow at least as often as single-cell
    // tampering (per-workload noise aside, the aggregate ordering is
    // robust).
    let mut single_cf = 0u32;
    let mut block_cf = 0u32;
    for w in ipds_workloads::all() {
        let protected = Protected::from_program(w.program(), &Config::default());
        let inputs = w.inputs(9);
        single_cf += protected
            .campaign_spec()
            .inputs(&inputs)
            .attacks(40)
            .seed(13)
            .model(AttackModel::BufferOverflow)
            .run()
            .cf_changed;
        block_cf += protected
            .campaign_spec()
            .inputs(&inputs)
            .attacks(40)
            .seed(13)
            .model(AttackModel::ContiguousOverflow)
            .run()
            .cf_changed;
    }
    assert!(
        block_cf > single_cf,
        "block {block_cf} should exceed single {single_cf}"
    );
}
