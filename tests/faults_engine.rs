//! The fault-injection engine's two headline contracts, exercised across
//! the facade (see docs/FAULTS.md):
//!
//! 1. **Determinism** — a seeded campaign is bit-identical at any thread
//!    count: same outcome counts, same latency vector, same merged
//!    `faults.*` metrics.
//! 2. **Loader integrity** — with the checksum on, every single-bit flip
//!    of the table image is rejected at load time (`image_undetected`
//!    stays 0 and image detections are latency-0).

use ipds::{Config, Protected};

fn protect(name: &str) -> (Protected, Vec<ipds::Input>) {
    let w = ipds::workloads::all()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("workload `{name}`"));
    let inputs = w.inputs(2006);
    (
        Protected::from_program(w.program(), &Config::default()),
        inputs,
    )
}

#[test]
fn campaigns_are_bit_identical_across_thread_counts() {
    let (p, inputs) = protect("telnetd");
    for checksum in [true, false] {
        let (serial, serial_metrics) = p
            .fault_spec()
            .inputs(&inputs)
            .flips(8)
            .seed(2006)
            .checksum(checksum)
            .threads(1)
            .run_metered();
        for threads in [2usize, 4, 8] {
            let (parallel, parallel_metrics) = p
                .fault_spec()
                .inputs(&inputs)
                .flips(8)
                .seed(2006)
                .checksum(checksum)
                .threads(threads)
                .run_metered();
            assert_eq!(
                serial, parallel,
                "checksum={checksum} threads={threads}: results must be bit-identical"
            );
            // The pool's chunk accounting observes the scheduler, not the
            // computation, and is the one telemetry pair allowed to vary
            // with thread count (see docs/PERF.md). Everything else must
            // merge identically.
            let stable = |m: &ipds::telemetry::MetricsRegistry| {
                m.counters()
                    .filter(|(k, _)| *k != "pool.chunks_claimed" && *k != "pool.chunks_stolen")
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                stable(&serial_metrics),
                stable(&parallel_metrics),
                "checksum={checksum} threads={threads}: deterministic metrics must be bit-identical"
            );
            assert_eq!(
                serial_metrics.histograms().collect::<Vec<_>>(),
                parallel_metrics.histograms().collect::<Vec<_>>(),
                "checksum={checksum} threads={threads}: histograms must be bit-identical"
            );
        }
    }
}

#[test]
fn every_single_bit_image_flip_is_detected_at_load() {
    for w in ipds::workloads::all().into_iter().take(3) {
        let inputs = w.inputs(2006);
        let p = Protected::from_program(w.program(), &Config::default());
        let r = p
            .fault_spec()
            .inputs(&inputs)
            .flips(16)
            .seed(0x5eed)
            .threads(4)
            .run();
        assert_eq!(
            r.image_undetected, 0,
            "{}: a checksummed loader must reject every flip",
            w.name
        );
        // Image faults are load-time rejections: all detected, and the
        // campaign's detections are at least as many.
        assert!(r.detected >= r.image, "{}", w.name);
        assert_eq!(r.image, 16, "{}", w.name);
        // Latency-0 detections at least cover the image rejections.
        let zero_latency = r.latencies.iter().filter(|&&l| l == 0).count() as u32;
        assert!(zero_latency >= r.image, "{}", w.name);
    }
}

#[test]
fn seeds_select_distinct_campaigns() {
    let (p, inputs) = protect("crond");
    let a = p.fault_spec().inputs(&inputs).flips(8).seed(1).run();
    let b = p.fault_spec().inputs(&inputs).flips(8).seed(2).run();
    // Outcome tallies may coincide, but the plans differ, so the full
    // result (latency vector included) almost surely does; at minimum the
    // campaign must be internally consistent either way.
    assert_eq!(a.detected + a.masked + a.crashed, a.injected);
    assert_eq!(b.detected + b.masked + b.crashed, b.injected);
    assert_eq!(a.injected, 24);
    assert_eq!(b.injected, 24);
}
