//! Property-test half of the zero-false-positive invariant (feature
//! `props`): random programs, random input streams, every analysis
//! variant — never an alarm without tampering. The deterministic half
//! lives in `zero_false_positive.rs` and always runs.

use ipds::{Config, Input, Protected};
use ipds_sim::ExecLimits;
use ipds_workloads::generator::{generate_program, GenConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random programs, random input streams, every analysis variant:
    /// never an alarm without tampering.
    #[test]
    fn random_programs_never_false_alarm(
        seed in 0u64..10_000,
        input_seed in 0u64..1000,
        store_anchors in proptest::bool::ANY,
        const_store in proptest::bool::ANY,
    ) {
        let src = generate_program(seed, GenConfig::default());
        let cfg = Config {
            store_anchors,
            const_store,
            ..Config::default()
        };
        let protected = Protected::from_program(
            ipds::ir::parse(&src).expect("generated program compiles"),
            &cfg,
        );
        let inputs: Vec<Input> = (0..48)
            .map(|i| Input::Int(((input_seed as i64).wrapping_mul(31) + i * 7) % 41 - 20))
            .collect();
        let report = protected
            .session()
            .inputs(&inputs)
            .limits(ExecLimits { max_steps: 2_000_000, max_depth: 64 })
            .run()
            .expect("clean session runs");
        prop_assert!(
            report.alarms.is_empty(),
            "seed {} raised {:?}\n{}",
            seed,
            report.alarms,
            src
        );
    }

    /// Tampering may or may not be detected, but a detection must imply the
    /// control flow actually changed (consistency of the experiment
    /// machinery itself).
    #[test]
    fn detection_implies_control_flow_change(
        seed in 0u64..2000,
        attack_seed in 0u64..1000,
    ) {
        let src = generate_program(seed, GenConfig::default());
        let program = ipds_ir::parse(&src).expect("generated program compiles");
        let analysis = ipds_analysis::analyze_program(&program, &Config::default());
        let inputs: Vec<Input> = (0..48).map(|i| Input::Int(i % 13 - 6)).collect();
        let limits = ExecLimits { max_steps: 2_000_000, max_depth: 64 };
        let (golden, steps, _) = ipds_sim::attack::golden_run(&program, &inputs, limits);
        prop_assume!(steps > 4);
        let mut rng = ipds_sim::rng::StdRng::seed_from_u64(attack_seed);
        let trigger = 1 + attack_seed % (steps - 2);
        let outcome = ipds_sim::attack::run_attack(
            &program,
            &analysis,
            &inputs,
            &golden,
            trigger,
            ipds_sim::AttackModel::FormatString,
            &mut rng,
            limits,
        );
        prop_assert!(
            !outcome.detected || outcome.control_flow_changed,
            "alarm without control-flow change: {outcome:?}\n{src}"
        );
    }
}
