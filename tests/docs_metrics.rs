//! Keeps the `pipeline.*` and `faults.*` metric documentation honest.
//!
//! docs/PIPELINE.md and docs/OBSERVABILITY.md each carry a counter table;
//! both must name **exactly** the keys in
//! `ipds_analysis::PIPELINE_COUNTERS`, and a full-featured build
//! (optimizer + verifier + refiner + linter) must emit exactly that key
//! set — no documented-but-dead counters, no shipped-but-undocumented
//! ones. docs/FAULTS.md gets the same treatment against
//! `ipds_sim::faults::{FAULT_COUNTERS, FAULT_HISTOGRAMS}` and a live
//! fault campaign, and docs/SERVICE.md against the service crate's
//! `SERVICE_COUNTERS` / `SERVICE_HISTOGRAMS` / `FLEET_COUNTERS` and a
//! live synthetic fleet.

use std::collections::BTreeSet;

use ipds::analysis::pipeline::{build_source, BuildOptions};
use ipds::analysis::PIPELINE_COUNTERS;
use ipds::runtime::CHECKER_COUNTERS;
use ipds::service::{FLEET_COUNTERS, SERVICE_COUNTERS, SERVICE_HISTOGRAMS};
use ipds::sim::{FAULT_COUNTERS, FAULT_HISTOGRAMS, POOL_COUNTERS};
use ipds::workloads;

/// Extracts every `<prefix><snake_case>` token from a documentation file.
fn doc_keys(path: &str, prefix: &str) -> BTreeSet<String> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{path} must be readable from the workspace root: {e}"));
    let mut found = BTreeSet::new();
    for (i, _) in text.match_indices(prefix) {
        let rest = &text[i + prefix.len()..];
        let key: String = rest
            .chars()
            .take_while(|c| c.is_ascii_lowercase() || *c == '_')
            .collect();
        if !key.is_empty() {
            found.insert(format!("{prefix}{key}"));
        }
    }
    found
}

/// Extracts every `pipeline.<snake_case>` token from a documentation file.
fn doc_counters(path: &str) -> BTreeSet<String> {
    doc_keys(path, "pipeline.")
}

#[test]
fn docs_agree_with_the_canonical_counter_list() {
    let canonical: BTreeSet<String> = PIPELINE_COUNTERS.iter().map(|s| s.to_string()).collect();
    for path in ["docs/PIPELINE.md", "docs/OBSERVABILITY.md"] {
        let documented = doc_counters(path);
        assert_eq!(
            documented, canonical,
            "{path} must document exactly the PIPELINE_COUNTERS keys"
        );
    }
}

#[test]
fn full_featured_build_emits_exactly_the_documented_keys() {
    // Compile from source so the front-end passes (and their `tokens` /
    // `functions` counters) run too. A nonzero `promote` budget opens the
    // ssa → mem2reg → deconstruct-ssa window, whose counters are
    // conditional like the refiner's and linter's, and `prune_feasibility`
    // turns on the prune-cfg pass so its four counters are emitted.
    let w = &workloads::all()[0];
    let build = build_source(
        w.source,
        BuildOptions {
            optimize: true,
            threads: 2,
            verify: true,
            refine: true,
            lint: true,
            promote: 50,
            prune_feasibility: true,
            ..BuildOptions::default()
        },
    )
    .expect("full-featured build must succeed");
    let emitted: BTreeSet<String> = build
        .metrics
        .counters()
        .map(|(name, _)| name.to_string())
        .collect();
    let canonical: BTreeSet<String> = PIPELINE_COUNTERS.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        emitted, canonical,
        "a full-featured build must emit exactly the documented counters"
    );
}

#[test]
fn faults_doc_agrees_with_the_canonical_key_list() {
    let canonical: BTreeSet<String> = FAULT_COUNTERS
        .iter()
        .chain(FAULT_HISTOGRAMS)
        .map(|s| s.to_string())
        .collect();
    let documented = doc_keys("docs/FAULTS.md", "faults.");
    assert_eq!(
        documented, canonical,
        "docs/FAULTS.md must document exactly FAULT_COUNTERS and FAULT_HISTOGRAMS"
    );
}

#[test]
fn fault_campaigns_emit_exactly_the_documented_keys() {
    let w = &workloads::all()[0];
    let p = ipds::Protected::from_program(w.program(), &ipds::Config::default());
    let inputs = w.inputs(7);
    let (_, metrics) = p
        .fault_spec()
        .inputs(&inputs)
        .flips(4)
        .seed(7)
        .run_metered();
    let counters: BTreeSet<String> = metrics.counters().map(|(k, _)| k.to_string()).collect();
    let canonical: BTreeSet<String> = FAULT_COUNTERS
        .iter()
        .chain(POOL_COUNTERS)
        .map(|s| s.to_string())
        .collect();
    assert_eq!(
        counters, canonical,
        "a fault campaign must emit exactly FAULT_COUNTERS plus the pool keys"
    );
    for key in FAULT_HISTOGRAMS {
        assert!(
            metrics.histogram(key).is_some(),
            "a fault campaign must emit the `{key}` histogram"
        );
    }
}

#[test]
fn service_doc_agrees_with_the_canonical_key_lists() {
    let service: BTreeSet<String> = SERVICE_COUNTERS
        .iter()
        .chain(SERVICE_HISTOGRAMS)
        .map(|s| s.to_string())
        .collect();
    assert_eq!(
        doc_keys("docs/SERVICE.md", "service."),
        service,
        "docs/SERVICE.md must document exactly SERVICE_COUNTERS and SERVICE_HISTOGRAMS"
    );
    let fleet: BTreeSet<String> = FLEET_COUNTERS.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        doc_keys("docs/SERVICE.md", "fleet."),
        fleet,
        "docs/SERVICE.md must document exactly the FLEET_COUNTERS keys"
    );
}

#[test]
fn fleet_runs_emit_exactly_the_documented_keys() {
    // A small two-workload fleet exercises every counter class: verified
    // and rejected images, accepted and refused sessions, ingestion,
    // incidents and correlation verdicts.
    let wl: Vec<_> = workloads::all().into_iter().take(2).collect();
    let report = ipds::ServiceSpec::new()
        .workloads(wl)
        .sessions(8)
        .batch(64)
        .window(4)
        .min_cluster(2)
        .run();
    let emitted: BTreeSet<String> = report
        .metrics
        .counters()
        .map(|(k, _)| k.to_string())
        .collect();
    let canonical: BTreeSet<String> = SERVICE_COUNTERS
        .iter()
        .chain(FLEET_COUNTERS)
        .map(|s| s.to_string())
        .collect();
    assert_eq!(
        emitted, canonical,
        "a fleet run must emit exactly the documented service and fleet counters"
    );
    for key in SERVICE_HISTOGRAMS {
        assert!(
            report.metrics.histogram(key).is_some(),
            "a fleet run must emit the `{key}` histogram"
        );
    }
}

#[test]
fn perf_doc_agrees_with_the_pool_and_checker_counter_lists() {
    let pool: BTreeSet<String> = POOL_COUNTERS.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        doc_keys("docs/PERF.md", "pool."),
        pool,
        "docs/PERF.md must document exactly the POOL_COUNTERS keys"
    );
    let checker: BTreeSet<String> = CHECKER_COUNTERS.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        doc_keys("docs/PERF.md", "checker."),
        checker,
        "docs/PERF.md must document exactly the CHECKER_COUNTERS keys"
    );
}

#[test]
fn attack_campaigns_emit_the_pool_and_checker_counters() {
    let w = &workloads::all()[0];
    let p = ipds::Protected::from_program(w.program(), &ipds::Config::default());
    let inputs = w.inputs(7);
    for threads in [1, 4] {
        let (_, metrics) = p
            .campaign_spec()
            .inputs(&inputs)
            .attacks(8)
            .seed(7)
            .threads(threads)
            .run_metered();
        let emitted: BTreeSet<String> = metrics.counters().map(|(k, _)| k.to_string()).collect();
        for key in POOL_COUNTERS.iter().chain(CHECKER_COUNTERS) {
            assert!(
                emitted.contains(*key),
                "a {threads}-thread campaign must emit `{key}`"
            );
        }
        assert_eq!(
            metrics.counter("pool.tasks_executed"),
            8,
            "one pool task per attack"
        );
    }
}
