//! Keeps the `pipeline.*` metric documentation honest.
//!
//! docs/PIPELINE.md and docs/OBSERVABILITY.md each carry a counter table;
//! both must name **exactly** the keys in
//! `ipds_analysis::PIPELINE_COUNTERS`, and a full-featured build
//! (optimizer + verifier + refiner + linter) must emit exactly that key
//! set — no documented-but-dead counters, no shipped-but-undocumented
//! ones.

use std::collections::BTreeSet;

use ipds::analysis::pipeline::{build_source, BuildOptions};
use ipds::analysis::PIPELINE_COUNTERS;
use ipds::workloads;

/// Extracts every `pipeline.<snake_case>` token from a documentation file.
fn doc_counters(path: &str) -> BTreeSet<String> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{path} must be readable from the workspace root: {e}"));
    let mut found = BTreeSet::new();
    for (i, _) in text.match_indices("pipeline.") {
        let rest = &text[i + "pipeline.".len()..];
        let key: String = rest
            .chars()
            .take_while(|c| c.is_ascii_lowercase() || *c == '_')
            .collect();
        if !key.is_empty() {
            found.insert(format!("pipeline.{key}"));
        }
    }
    found
}

#[test]
fn docs_agree_with_the_canonical_counter_list() {
    let canonical: BTreeSet<String> = PIPELINE_COUNTERS.iter().map(|s| s.to_string()).collect();
    for path in ["docs/PIPELINE.md", "docs/OBSERVABILITY.md"] {
        let documented = doc_counters(path);
        assert_eq!(
            documented, canonical,
            "{path} must document exactly the PIPELINE_COUNTERS keys"
        );
    }
}

#[test]
fn full_featured_build_emits_exactly_the_documented_keys() {
    // Compile from source so the front-end passes (and their `tokens` /
    // `functions` counters) run too.
    let w = &workloads::all()[0];
    let build = build_source(
        w.source,
        BuildOptions {
            optimize: true,
            threads: 2,
            verify: true,
            refine: true,
            lint: true,
            ..BuildOptions::default()
        },
    )
    .expect("full-featured build must succeed");
    let emitted: BTreeSet<String> = build
        .metrics
        .counters()
        .map(|(name, _)| name.to_string())
        .collect();
    let canonical: BTreeSet<String> = PIPELINE_COUNTERS.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        emitted, canonical,
        "a full-featured build must emit exactly the documented counters"
    );
}
